//! Shared differential-test support: the brute-force oracles and seeded-case
//! generators every correctness test in the workspace compares against.
//!
//! The repo's central invariant is that *every* enumerator — any algorithm,
//! any granularity, any thread count, one-shot or delta — reports exactly the
//! same cycle set. Before this module existed, each test site carried its own
//! private brute-force oracle (a DFS in `seq::temporal`'s tests, the
//! Tiernan-as-baseline idiom in the equivalence suite, hand-rolled seeded
//! case generators in `tests/`). Now there is **one oracle per cycle kind**,
//! used everywhere:
//!
//! * [`oracle_simple`] — Tiernan's brute-force search through the production
//!   entry point (itself validated against an independent path-extension
//!   search in this module's tests);
//! * [`oracle_temporal`] — an independent, pruning-free path-extension DFS
//!   that shares no code with the enumerators under test.
//!
//! Both return **canonicalised, sorted** cycle vectors ([`canonicalized`]),
//! so two result sets are equal iff they are byte-identical as `Vec<Cycle>`.
//!
//! This module is visible to the crate's own unit tests unconditionally
//! (`cfg(test)`) and to integration tests / downstream differential
//! harnesses through the `testing` cargo feature; production builds exclude
//! it (and its `rand` dependency) entirely.

use crate::cycle::{CollectingSink, Cycle};
use crate::options::SimpleCycleOptions;
use crate::seq::tiernan::tiernan_simple;
use pce_graph::{CyclePredicate, GraphBuilder, TemporalEdge, TemporalGraph, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canonicalises and sorts a cycle collection: the deterministic form every
/// differential comparison in the workspace uses (equal iff byte-identical).
pub fn canonicalized(cycles: impl IntoIterator<Item = Cycle>) -> Vec<Cycle> {
    let mut canon: Vec<Cycle> = cycles.into_iter().map(|c| c.canonicalize()).collect();
    canon.sort_by(|a, b| a.edges.cmp(&b.edges));
    canon
}

/// The simple-cycle oracle: Tiernan's brute-force enumeration (no blocking,
/// no pruning beyond the window), canonicalised. This is the
/// Tiernan-as-baseline idiom the equivalence tests always used, packaged as
/// the one shared reference.
pub fn oracle_simple(graph: &TemporalGraph, opts: &SimpleCycleOptions) -> Vec<Cycle> {
    let sink = CollectingSink::new();
    tiernan_simple(graph, opts, &sink);
    sink.canonical_cycles()
}

/// The temporal-cycle oracle: a pruning-free path-extension DFS (strictly
/// increasing timestamps, window anchored at each root edge) that shares no
/// code with the enumerators under test. Canonicalised.
pub fn oracle_temporal(graph: &TemporalGraph, delta: Timestamp) -> Vec<Cycle> {
    let mut result = Vec::new();
    for (root, e0) in graph.edge_ids() {
        if e0.src == e0.dst {
            continue;
        }
        let t_end = e0.ts.saturating_add(delta);
        let mut stack = vec![(vec![e0.src, e0.dst], vec![root], e0.ts)];
        while let Some((path, edges, arrival)) = stack.pop() {
            let last = *path.last().expect("paths are never empty");
            for &entry in graph.out_edges(last) {
                if entry.ts <= arrival || entry.ts > t_end {
                    continue;
                }
                if entry.neighbor == e0.src {
                    let mut cedges = edges.clone();
                    cedges.push(entry.edge);
                    result.push(Cycle::new(path.clone(), cedges));
                } else if !path.contains(&entry.neighbor) {
                    let mut npath = path.clone();
                    let mut nedges = edges.clone();
                    npath.push(entry.neighbor);
                    nedges.push(entry.edge);
                    stack.push((npath, nedges, entry.ts));
                }
            }
        }
    }
    canonicalized(result)
}

/// Post-filters oracle cycles through the **exact** predicate semantics: the
/// zero-pruning differential baseline for every predicate class (per-edge,
/// aggregate, positional, vertex-set). Feed it the output of
/// [`oracle_simple`] or [`oracle_temporal`] — or any cycle set in any
/// rotation — and compare the survivors against a pushdown-enabled
/// enumeration of the same query.
///
/// Positional constraints are defined over *reported* order (path edges in
/// traversal order, the maximum edge last), while oracle cycles arrive
/// canonicalised (rotated to their minimum edge id). Edge ids refine
/// timestamp order, so the maximum edge id **is** the maximum `(ts, id)`
/// edge every delta search roots at; each cycle is re-rotated so that edge
/// comes last before [`CyclePredicate::accepts_cycle`] runs. The result is
/// canonicalised again, ready for byte-identical comparison.
pub fn oracle_with_predicates(
    graph: &TemporalGraph,
    cycles: impl IntoIterator<Item = Cycle>,
    predicate: &CyclePredicate,
) -> Vec<Cycle> {
    let survivors = cycles.into_iter().filter(|c| {
        let k = c.edges.len();
        let root = (0..k)
            .max_by_key(|&i| c.edges[i])
            .expect("cycles have edges");
        // Rotate so the maximum (root) edge is last: index `root` moves to
        // position k-1, i.e. everything shifts left by root+1.
        let shift = (root + 1) % k;
        let edges: Vec<TemporalEdge> = (0..k)
            .map(|i| graph.edge(c.edges[(shift + i) % k]))
            .collect();
        let vertices: Vec<_> = (0..k).map(|i| c.vertices[(shift + i) % k]).collect();
        predicate.accepts_cycle(&edges, &vertices)
    });
    canonicalized(survivors)
}

/// Builds a temporal multigraph from raw `(src, dst, ts)` triples, wrapping
/// endpoints into `0..n`. The shape every seeded sweep uses to construct its
/// cases.
pub fn graph_from_edges(n: u32, edges: &[(u32, u32, i64)]) -> TemporalGraph {
    let mut builder = GraphBuilder::with_vertices(n as usize);
    for &(s, d, t) in edges {
        builder.push_edge(s % n, d % n, t);
    }
    builder.build()
}

/// One deterministically generated random differential-test case: a sparse
/// temporal multigraph plus a window size that exercises it. `seed` fully
/// determines the case, so a failing seed printed in an assertion message (or
/// a CI log) reproduces the exact graph.
pub fn random_case(
    seed: u64,
    max_vertices: u32,
    max_edges: usize,
    time_span: i64,
) -> (TemporalGraph, Timestamp) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4..max_vertices);
    let num_edges = rng.gen_range(1..max_edges);
    let edges: Vec<(u32, u32, i64)> = (0..num_edges)
        .map(|_| {
            (
                rng.gen_range(0..max_vertices),
                rng.gen_range(0..max_vertices),
                rng.gen_range(0..time_span),
            )
        })
        .collect();
    let delta = rng.gen_range(5..(time_span * 2 / 3).max(6));
    (graph_from_edges(n, &edges), delta)
}

/// Shape of one seeded random temporal edge stream (see
/// [`random_temporal_stream`]): knobs for the stream pathologies the
/// streaming harness must stay correct under.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// Endpoints are drawn from `0..num_vertices`.
    pub num_vertices: u32,
    /// Total edges across all batches.
    pub num_edges: usize,
    /// Edges per batch (the last batch may be shorter). Must be >= 1.
    pub batch_edges: usize,
    /// Probability that an edge reuses the previous edge's timestamp
    /// (duplicate timestamps, within and across batches).
    pub duplicate_ts: f64,
    /// Probability that the timestamp takes a large jump (`10×` the normal
    /// step) instead of a small one — bursts of activity separated by quiet
    /// gaps, which is what makes batches straddle window expiry.
    pub burstiness: f64,
    /// Shuffle each batch's edges out of timestamp order before returning
    /// it (the ingest API allows any order *within* a batch; streams stay
    /// non-decreasing *across* batches by construction).
    pub out_of_order: bool,
}

impl Default for StreamSpec {
    fn default() -> Self {
        Self {
            num_vertices: 18,
            num_edges: 100,
            batch_edges: 9,
            duplicate_ts: 0.15,
            burstiness: 0.1,
            out_of_order: true,
        }
    }
}

/// Generates a deterministic random temporal edge stream, already cut into
/// ingest batches: timestamps are non-decreasing across batches (the stream
/// contract), with controllable duplicate timestamps, burstiness (large time
/// jumps) and within-batch out-of-orderness. `seed` fully determines the
/// stream, so a failing seed printed in an assertion message (or echoed by
/// CI) reproduces the exact batches.
pub fn random_temporal_stream(seed: u64, spec: &StreamSpec) -> Vec<Vec<TemporalEdge>> {
    assert!(spec.batch_edges >= 1, "batches must be non-empty");
    assert!(spec.num_vertices >= 2, "need at least two endpoints");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts: Timestamp = 0;
    let mut edges = Vec::with_capacity(spec.num_edges);
    for _ in 0..spec.num_edges {
        if !edges.is_empty() && !rng.gen_bool(spec.duplicate_ts) {
            let step = if rng.gen_bool(spec.burstiness) { 10 } else { 1 };
            ts += rng.gen_range(1..=3i64) * step;
        }
        edges.push(TemporalEdge::new(
            rng.gen_range(0..spec.num_vertices),
            rng.gen_range(0..spec.num_vertices),
            ts,
        ));
    }
    edges
        .chunks(spec.batch_edges)
        .map(|batch| {
            let mut batch = batch.to_vec();
            if spec.out_of_order {
                // Fisher-Yates with the seeded generator: the batch arrives
                // in arbitrary order, as the ingest API permits.
                for i in (1..batch.len()).rev() {
                    batch.swap(i, rng.gen_range(0..=i));
                }
            }
            batch
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::johnson::johnson_simple;

    /// Independent path-extension search for simple cycles, used to validate
    /// the Tiernan-backed [`oracle_simple`] itself (rooted at each minimum
    /// edge, window anchored there, no blocking).
    fn path_extension_simple(graph: &TemporalGraph, delta: Timestamp) -> Vec<Cycle> {
        let mut result = Vec::new();
        for (root, e0) in graph.edge_ids() {
            if e0.src == e0.dst {
                continue;
            }
            let t_end = e0.ts.saturating_add(delta);
            let mut stack = vec![(vec![e0.src, e0.dst], vec![root])];
            while let Some((path, edges)) = stack.pop() {
                let last = *path.last().expect("non-empty");
                for &entry in graph.out_edges(last) {
                    if entry.edge <= root || entry.ts > t_end {
                        continue;
                    }
                    if entry.neighbor == e0.src {
                        let mut cedges = edges.clone();
                        cedges.push(entry.edge);
                        result.push(Cycle::new(path.clone(), cedges));
                    } else if !path.contains(&entry.neighbor) {
                        let mut npath = path.clone();
                        let mut nedges = edges.clone();
                        npath.push(entry.neighbor);
                        nedges.push(entry.edge);
                        stack.push((npath, nedges));
                    }
                }
            }
        }
        canonicalized(result)
    }

    #[test]
    fn simple_oracle_matches_independent_search_and_johnson() {
        for seed in 0..6 {
            let (graph, delta) = random_case(10_000 + seed, 12, 60, 40);
            let opts = SimpleCycleOptions::with_window(delta);
            let oracle = oracle_simple(&graph, &opts);
            assert_eq!(
                oracle,
                path_extension_simple(&graph, delta),
                "seed {seed} (oracle vs independent search)"
            );
            let sink = CollectingSink::new();
            johnson_simple(&graph, &opts, &sink);
            assert_eq!(oracle, sink.canonical_cycles(), "seed {seed} (vs Johnson)");
        }
    }

    #[test]
    fn temporal_oracle_finds_known_cycles() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 1)
            .add_edge(1, 2, 3)
            .add_edge(2, 0, 5)
            .add_edge(2, 0, 2) // non-increasing return: not temporal
            .build();
        let cycles = oracle_temporal(&g, 100);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].is_temporal(&g));
        // The window constraint is honoured.
        assert!(oracle_temporal(&g, 3).is_empty());
    }

    #[test]
    fn random_cases_are_deterministic_per_seed() {
        let (a, da) = random_case(77, 14, 70, 60);
        let (b, db) = random_case(77, 14, 70, 60);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(da, db);
        let (c, _) = random_case(78, 14, 70, 60);
        assert!(a.edges() != c.edges() || a.num_vertices() != c.num_vertices());
    }

    #[test]
    fn random_temporal_stream_is_deterministic_and_in_stream_order() {
        let spec = StreamSpec::default();
        let a = random_temporal_stream(42, &spec);
        let b = random_temporal_stream(42, &spec);
        assert_eq!(a, b, "equal seeds give equal streams");
        assert!(random_temporal_stream(43, &spec) != a, "seeds diverge");
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), spec.num_edges);
        assert!(a[..a.len() - 1].iter().all(|b| b.len() == spec.batch_edges));
        // Non-decreasing across batches: every batch's minimum timestamp is
        // at or above the previous batch's maximum (the ingest contract).
        let mut watermark = Timestamp::MIN;
        for batch in &a {
            let lo = batch.iter().map(|e| e.ts).min().unwrap();
            let hi = batch.iter().map(|e| e.ts).max().unwrap();
            assert!(lo >= watermark, "stream order violated");
            watermark = watermark.max(hi);
        }
        // The knobs do what they say: duplicates exist, and at least one
        // batch is internally out of timestamp order.
        let flat: Vec<Timestamp> = a.iter().flatten().map(|e| e.ts).collect();
        assert!(
            flat.windows(2).any(|w| w[0] == w[1]),
            "duplicate timestamps"
        );
        assert!(
            a.iter().any(|b| b.windows(2).any(|w| w[0].ts > w[1].ts)),
            "within-batch out-of-orderness"
        );
        // Bursts leave large gaps somewhere in the stream.
        assert!(flat.windows(2).any(|w| w[1] - w[0] >= 10), "bursty jumps");

        // The in-order variant keeps every batch sorted.
        let ordered = random_temporal_stream(
            42,
            &StreamSpec {
                out_of_order: false,
                ..spec
            },
        );
        assert!(ordered
            .iter()
            .all(|b| b.windows(2).all(|w| w[0].ts <= w[1].ts)));
    }

    #[test]
    fn predicate_oracle_filters_each_predicate_class() {
        use pce_graph::{EdgePredicate, LabelFilter, Position, VertexFilter};
        // Two triangles sharing the closing max edge 2→0 (amount 7):
        //   A: 0→1→2→0, amounts 5,6,7 (total 18), labels 1,1,9
        //   B: 0→3→2→0, amounts 4,5,7 (total 16), labels 2,2,9
        let mut b = GraphBuilder::new();
        for &(s, d, t, a, l) in &[
            (0u32, 1u32, 1i64, 5u64, 1u16),
            (1, 2, 2, 6, 1),
            (0, 3, 1, 4, 2),
            (3, 2, 2, 5, 2),
            (2, 0, 3, 7, 9),
        ] {
            b.push_attr_edge(TemporalEdge::with_attrs(s, d, t, a, l));
        }
        let g = b.build();
        let all = oracle_simple(&g, &SimpleCycleOptions::with_window(100));
        assert_eq!(all.len(), 2);

        let keep = |p: CyclePredicate| oracle_with_predicates(&g, all.clone(), &p);
        assert_eq!(keep(CyclePredicate::pass_all()), all);
        assert_eq!(keep(CyclePredicate::pass_all().total_max(17)).len(), 1);
        assert_eq!(keep(CyclePredicate::pass_all().total_min(17)).len(), 1);
        assert_eq!(
            keep(CyclePredicate::pass_all().monotone_amounts(true)).len(),
            2,
            "both triangles have strictly increasing amounts in reported order"
        );
        assert_eq!(
            keep(CyclePredicate::pass_all().vertices(VertexFilter::deny(vec![3]))).len(),
            1
        );
        assert_eq!(
            keep(CyclePredicate::pass_all().at(
                Position::FromStart(0),
                EdgePredicate::pass_all().labels(LabelFilter::allow(vec![2])),
            ))
            .len(),
            1,
            "only B's first path edge carries label 2"
        );
        assert_eq!(
            keep(CyclePredicate::pass_all().at(
                Position::FromEnd(0),
                EdgePredicate::pass_all().min_amount(7),
            ))
            .len(),
            2,
            "the shared closing max edge (amount 7) satisfies both"
        );
        assert!(keep(CyclePredicate::pass_all().at(
            Position::FromEnd(0),
            EdgePredicate::pass_all().min_amount(8)
        ))
        .is_empty());
    }

    #[test]
    fn canonicalized_is_order_invariant() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 1)
            .add_edge(1, 0, 2)
            .build();
        let a = Cycle::new(vec![0, 1], vec![0, 1]);
        let b = Cycle::new(vec![1, 0], vec![1, 0]);
        assert_eq!(canonicalized([a.clone(), b.clone()]), canonicalized([b, a]));
        let _ = g;
    }
}
