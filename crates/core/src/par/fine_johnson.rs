//! The fine-grained parallel Johnson algorithm (§5).
//!
//! The sequential Johnson recursion is re-expressed with an explicit stack of
//! *frames*; each frame records the vertex it explores and the admissible
//! branches (outgoing edges) that have not been claimed yet. The worker that
//! owns a rooted search claims branches from its deepest frame — exactly the
//! depth-first order of the sequential algorithm — while **idle workers steal
//! a branch from the shallowest frame** of any registered search:
//!
//! 1. the thief locks the victim search, claims one unexplored branch, and
//!    copies the victim's `Π` (path), `Blk` (blocked set) and `Blist`
//!    (unblock lists);
//! 2. it truncates the copied path back to the frame the branch belongs to
//!    and invokes the **recursive unblocking procedure** for every removed
//!    vertex — the copy-on-steal state reconstruction of §5 — so that blocked
//!    vertices discovered by the victim *after* the branch was created can
//!    still be reused when they remain valid for the shorter path;
//! 3. it then continues as an independent search (registered for further
//!    stealing), with its own copies of the data structures.
//!
//! When the victim later backtracks over a frame that lost branches to
//! thieves, it conservatively treats the stolen subtrees as if they had found
//! a cycle, i.e. it unblocks the frame vertex. Unblocking too eagerly can only
//! cost pruning (this is the source of the algorithm's work inefficiency,
//! Theorem 5.1 — up to `min(s, p·c)` vertex visits); it can never cause a
//! cycle to be missed, and an explicit on-path check guarantees that only
//! simple cycles are reported. Every branch is claimed by exactly one worker,
//! so no cycle is reported twice.
//!
//! All mutations of a search's shared state happen under that search's mutex.
//! The critical sections are dominated by the recursive unblocking procedure
//! and by the copy performed on steal — which is why the paper observes lock
//! contention for graphs with very low cycle-to-vertex ratios (§8, the AML
//! outlier), an effect the `ablations` benchmark reproduces.

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::SimpleCycleOptions;
use crate::seq::{handle_self_loop_root, RootScratch};
use crate::union::{UnionQuery, UnionView};
use crate::util::{fx_map, fx_set, FxHashMap, FxHashSet};
use crate::{Algorithm, Granularity};
use parking_lot::Mutex;
use pce_graph::{EdgeId, TemporalGraph, TimeWindow, VertexId};
use pce_sched::{DynamicCounter, StealRegistry, ThreadPool};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One recursion level of a fine-grained Johnson search.
#[derive(Debug)]
struct Frame {
    /// The vertex this frame explores (the tip of the path at this level).
    vertex: VertexId,
    /// Admissible branches (edge, target) computed when the frame was pushed.
    branches: Vec<(EdgeId, VertexId)>,
    /// Index of the next branch to claim.
    next: usize,
    /// Whether any branch explored *by the owner* found a cycle.
    found: bool,
    /// Whether any branch of this frame was stolen by another worker.
    stolen: bool,
}

impl Frame {
    fn unclaimed(&self) -> usize {
        self.branches.len() - self.next
    }
}

/// The mutable state of one active rooted (or stolen) search.
struct SearchCore {
    root: EdgeId,
    v0: VertexId,
    window: TimeWindow,
    union: Arc<UnionView>,
    use_blocking: bool,
    /// Path length when the search started (2 for root searches, the rolled
    /// back length for stolen searches); `frames[i]` corresponds to a path of
    /// `base_path_len + i` vertices.
    base_path_len: usize,
    path: Vec<VertexId>,
    path_edges: Vec<EdgeId>,
    on_path: FxHashSet<VertexId>,
    blocked: FxHashSet<VertexId>,
    blist: FxHashMap<VertexId, FxHashSet<VertexId>>,
    frames: Vec<Frame>,
    /// Total unclaimed branches across all frames (steal-availability hint).
    unclaimed: usize,
}

/// A registered, stealable search.
struct SharedSearch {
    core: Mutex<SearchCore>,
    stealable: AtomicBool,
}

/// The work package a thief takes away from a victim.
struct StolenBranch {
    root: EdgeId,
    v0: VertexId,
    window: TimeWindow,
    union: Arc<UnionView>,
    use_blocking: bool,
    path: Vec<VertexId>,
    path_edges: Vec<EdgeId>,
    on_path: FxHashSet<VertexId>,
    blocked: FxHashSet<VertexId>,
    blist: FxHashMap<VertexId, FxHashSet<VertexId>>,
    frame_vertex: VertexId,
    branch: (EdgeId, VertexId),
}

/// Computes the admissible branches of `v` for the given rooted search and
/// records one edge visit per admissible candidate (the same accounting as
/// the sequential Johnson implementation).
#[allow(clippy::too_many_arguments)]
fn admissible_branches(
    graph: &TemporalGraph,
    v: VertexId,
    root: EdgeId,
    v0: VertexId,
    window: TimeWindow,
    union: &UnionView,
    metrics: &WorkMetrics,
    worker: usize,
) -> Vec<(EdgeId, VertexId)> {
    let mut branches = Vec::new();
    for &entry in graph.out_edges_in_window(v, window) {
        if entry.edge <= root {
            continue;
        }
        metrics.edge_visit(worker);
        if entry.neighbor == v0 || union.in_union(entry.neighbor) {
            branches.push((entry.edge, entry.neighbor));
        }
    }
    branches
}

/// The recursive unblocking procedure over owned blocked/Blist maps.
fn recursive_unblock(
    blocked: &mut FxHashSet<VertexId>,
    blist: &mut FxHashMap<VertexId, FxHashSet<VertexId>>,
    v: VertexId,
    metrics: &WorkMetrics,
    worker: usize,
) {
    if !blocked.remove(&v) {
        return;
    }
    metrics.unblock_op(worker);
    if let Some(list) = blist.remove(&v) {
        for u in list {
            recursive_unblock(blocked, blist, u, metrics, worker);
        }
    }
}

impl SharedSearch {
    fn new_root(
        graph: &TemporalGraph,
        root: EdgeId,
        opts: &SimpleCycleOptions,
        union: Arc<UnionView>,
        metrics: &WorkMetrics,
        worker: usize,
    ) -> Self {
        let e0 = graph.edge(root);
        let window = TimeWindow::from_start(e0.ts, opts.effective_delta());
        let mut on_path = fx_set();
        on_path.insert(e0.src);
        on_path.insert(e0.dst);
        let mut blocked = fx_set();
        blocked.insert(e0.src);
        blocked.insert(e0.dst);
        let branches =
            admissible_branches(graph, e0.dst, root, e0.src, window, &union, metrics, worker);
        let unclaimed = branches.len();
        let core = SearchCore {
            root,
            v0: e0.src,
            window,
            union,
            use_blocking: opts.max_len.is_none(),
            base_path_len: 2,
            path: vec![e0.src, e0.dst],
            path_edges: vec![root],
            on_path,
            blocked,
            blist: fx_map(),
            frames: vec![Frame {
                vertex: e0.dst,
                branches,
                next: 0,
                found: false,
                stolen: false,
            }],
            unclaimed,
        };
        Self {
            stealable: AtomicBool::new(unclaimed > 0),
            core: Mutex::new(core),
        }
    }

    fn from_stolen(stolen: StolenBranch) -> Self {
        let base_path_len = stolen.path.len();
        let core = SearchCore {
            root: stolen.root,
            v0: stolen.v0,
            window: stolen.window,
            union: stolen.union,
            use_blocking: stolen.use_blocking,
            base_path_len,
            path: stolen.path,
            path_edges: stolen.path_edges,
            on_path: stolen.on_path,
            blocked: stolen.blocked,
            blist: stolen.blist,
            frames: vec![Frame {
                vertex: stolen.frame_vertex,
                branches: vec![stolen.branch],
                next: 0,
                found: false,
                stolen: false,
            }],
            unclaimed: 1,
        };
        Self {
            stealable: AtomicBool::new(false),
            core: Mutex::new(core),
        }
    }

    /// Attempts to split one branch off this search (called by idle workers
    /// through the steal registry).
    fn try_steal(&self, metrics: &WorkMetrics, worker: usize) -> Option<StolenBranch> {
        if !self.stealable.load(Ordering::Relaxed) {
            return None;
        }
        let mut core = self.core.lock();
        if core.unclaimed == 0 {
            self.stealable.store(false, Ordering::Relaxed);
            return None;
        }
        // Steal from the shallowest frame: its subtree is the largest and
        // rolling the path back to it preserves the most blocked-vertex
        // information for the thief.
        let depth = core
            .frames
            .iter()
            .position(|f| f.unclaimed() > 0)
            .expect("unclaimed > 0 implies a frame with branches");
        let frame_path_len = core.base_path_len + depth;
        let frame = &mut core.frames[depth];
        let branch = frame.branches[frame.next];
        frame.next += 1;
        frame.stolen = true;
        let frame_vertex = frame.vertex;
        core.unclaimed -= 1;
        if core.unclaimed == 0 {
            self.stealable.store(false, Ordering::Relaxed);
        }

        // Copy-on-steal: copy Π, Blk and Blist, roll the path back to the
        // frame the stolen branch belongs to and recursively unblock the
        // removed vertices.
        metrics.copy_event(worker);
        let path = core.path[..frame_path_len].to_vec();
        let path_edges = core.path_edges[..frame_path_len - 1].to_vec();
        let on_path: FxHashSet<VertexId> = path.iter().copied().collect();
        let mut blocked = core.blocked.clone();
        let mut blist = core.blist.clone();
        for &removed in &core.path[frame_path_len..] {
            recursive_unblock(&mut blocked, &mut blist, removed, metrics, worker);
        }

        Some(StolenBranch {
            root: core.root,
            v0: core.v0,
            window: core.window,
            union: Arc::clone(&core.union),
            use_blocking: core.use_blocking,
            path,
            path_edges,
            on_path,
            blocked,
            blist,
            frame_vertex,
            branch,
        })
    }
}

/// Runs a search (rooted or stolen) to completion on the calling worker,
/// exposing unclaimed branches to thieves throughout. Winds down early (with
/// branches unexplored) once the sink stops the run.
fn run_search<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &HaltingSink<'_, S>,
    metrics: &WorkMetrics,
    worker: usize,
    shared: &SharedSearch,
) {
    loop {
        if sink.stopped() {
            break;
        }
        let mut core = shared.core.lock();
        let Some(frame) = core.frames.last_mut() else {
            break;
        };
        if frame.next < frame.branches.len() {
            // Claim the next branch of the deepest frame (sequential
            // depth-first order for the owning worker).
            let (edge, w) = frame.branches[frame.next];
            frame.next += 1;
            core.unclaimed -= 1;
            if w == core.v0 {
                if opts.len_ok(core.path_edges.len() + 1) {
                    core.path_edges.push(edge);
                    sink.push(&core.path, &core.path_edges);
                    core.path_edges.pop();
                    core.frames.last_mut().expect("frame exists").found = true;
                }
                shared
                    .stealable
                    .store(core.unclaimed > 0, Ordering::Relaxed);
                continue;
            }
            if core.on_path.contains(&w)
                || (core.use_blocking && core.blocked.contains(&w))
                || !opts.len_ok(core.path_edges.len() + 2)
            {
                shared
                    .stealable
                    .store(core.unclaimed > 0, Ordering::Relaxed);
                continue;
            }
            // Descend into w.
            metrics.recursive_call(worker);
            core.path.push(w);
            core.path_edges.push(edge);
            core.on_path.insert(w);
            if core.use_blocking {
                core.blocked.insert(w);
            }
            let branches = admissible_branches(
                graph,
                w,
                core.root,
                core.v0,
                core.window,
                &core.union,
                metrics,
                worker,
            );
            core.unclaimed += branches.len();
            core.frames.push(Frame {
                vertex: w,
                branches,
                next: 0,
                found: false,
                stolen: false,
            });
            shared
                .stealable
                .store(core.unclaimed > 0, Ordering::Relaxed);
        } else {
            // Frame exhausted: backtrack.
            let frame = core.frames.pop().expect("frame exists");
            if core.frames.is_empty() {
                break;
            }
            let v = frame.vertex;
            core.path.pop();
            core.path_edges.pop();
            core.on_path.remove(&v);
            // Treat stolen subtrees as if they had found a cycle: unblocking
            // too much only costs pruning efficiency, never correctness.
            let found = frame.found || frame.stolen;
            if core.use_blocking {
                if found {
                    let mut blocked = std::mem::take(&mut core.blocked);
                    let mut blist = std::mem::take(&mut core.blist);
                    recursive_unblock(&mut blocked, &mut blist, v, metrics, worker);
                    core.blocked = blocked;
                    core.blist = blist;
                } else {
                    for &(_, w) in &frame.branches {
                        core.blist.entry(w).or_default().insert(v);
                    }
                }
            }
            if found {
                core.frames.last_mut().expect("parent exists").found = true;
            }
        }
    }
}

/// Fine-grained parallel Johnson enumeration of all (window-constrained)
/// simple cycles.
pub fn fine_johnson_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    let threads = pool.num_threads();
    let metrics = WorkMetrics::new(threads);
    let start = Instant::now();
    let counter = DynamicCounter::new(graph.num_edges(), 1);
    let registry: StealRegistry<SharedSearch> = StealRegistry::new();
    let active = AtomicUsize::new(0);
    let sink = HaltingSink::new(sink);

    pool.scope(|scope| {
        for _ in 0..threads {
            let counter = &counter;
            let registry = &registry;
            let active = &active;
            let metrics = &metrics;
            let sink = &sink;
            scope.spawn(move |_, ctx| {
                let worker = ctx.worker_id();
                let mut scratch = RootScratch::new(graph.num_vertices());
                loop {
                    if sink.stopped() {
                        break;
                    }
                    if let Some(root) = counter.next() {
                        let root = root as EdgeId;
                        let prep = Instant::now();
                        if handle_self_loop_root(graph, root, opts, sink) {
                            continue;
                        }
                        let e0 = graph.edge(root);
                        let window = TimeWindow::from_start(e0.ts, opts.effective_delta());
                        if !scratch.union.compute_simple(graph, root, window) {
                            metrics.add_busy(worker, prep.elapsed());
                            continue;
                        }
                        metrics.root_processed(worker);
                        let union = Arc::new(UnionView::from_simple(&scratch.union));
                        active.fetch_add(1, Ordering::AcqRel);
                        let shared = Arc::new(SharedSearch::new_root(
                            graph, root, opts, union, metrics, worker,
                        ));
                        let guard = registry.register(Arc::clone(&shared));
                        run_search(graph, opts, sink, metrics, worker, &shared);
                        drop(guard);
                        active.fetch_sub(1, Ordering::AcqRel);
                        metrics.add_busy(worker, prep.elapsed());
                    } else if let Some(stolen) =
                        registry.try_steal(|victim| victim.try_steal(metrics, worker))
                    {
                        let t0 = Instant::now();
                        metrics.steal_event(worker);
                        active.fetch_add(1, Ordering::AcqRel);
                        let shared = Arc::new(SharedSearch::from_stolen(stolen));
                        let guard = registry.register(Arc::clone(&shared));
                        run_search(graph, opts, sink, metrics, worker, &shared);
                        drop(guard);
                        active.fetch_sub(1, Ordering::AcqRel);
                        metrics.add_busy(worker, t0.elapsed());
                    } else if counter.exhausted() && active.load(Ordering::Acquire) == 0 {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    RunStats {
        cycles: sink.count(),
        wall_secs: start.elapsed().as_secs_f64(),
        work: metrics.snapshot(),
        threads,
        ..RunStats::default()
    }
    .tagged(Algorithm::Johnson, Granularity::FineGrained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use crate::seq::johnson::johnson_simple;
    use pce_graph::generators::{self, RandomTemporalConfig};

    #[test]
    fn matches_sequential_on_small_graphs() {
        for n in 2..=9 {
            let g = generators::fig4a_exponential_cycles(n);
            let sink = CountingSink::new();
            fine_johnson_simple(
                &g,
                &SimpleCycleOptions::unconstrained(),
                &sink,
                &ThreadPool::new(4),
            );
            assert_eq!(sink.count(), generators::fig4a_cycle_count(n), "n={n}");
        }
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::uniform_temporal(RandomTemporalConfig {
                num_vertices: 16,
                num_edges: 70,
                time_span: 50,
                seed: 900 + seed,
            });
            let opts = SimpleCycleOptions::with_window(25);
            let seq = CollectingSink::new();
            johnson_simple(&g, &opts, &seq);
            let par = CollectingSink::new();
            fine_johnson_simple(&g, &opts, &par, &ThreadPool::new(4));
            assert_eq!(
                seq.canonical_cycles(),
                par.canonical_cycles(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fig4a_work_is_spread_across_workers() {
        // All 2^(n-2) cycles hang off a single root edge; with 4 workers the
        // fine-grained algorithm must steal branches of that single search.
        // The graph is sized so the search takes long enough for thieves to
        // arrive even on a fast machine.
        let g = generators::fig4a_exponential_cycles(16);
        let sink = CountingSink::new();
        let stats = fine_johnson_simple(
            &g,
            &SimpleCycleOptions::unconstrained(),
            &sink,
            &ThreadPool::new(4),
        );
        assert_eq!(sink.count(), generators::fig4a_cycle_count(16));
        eprintln!(
            "fig4a steals={} copies={} per-worker calls={:?}",
            stats.work.total_steals(),
            stats.work.total_copies(),
            stats
                .work
                .workers
                .iter()
                .map(|w| w.recursive_calls)
                .collect::<Vec<_>>()
        );
        assert!(stats.work.total_steals() > 0, "steals should have happened");
        let active_workers = stats
            .work
            .workers
            .iter()
            .filter(|w| w.recursive_calls > 0)
            .count();
        assert!(
            active_workers > 1,
            "fine-grained Johnson should use several workers on Figure 4a"
        );
    }

    #[test]
    fn results_independent_of_thread_count() {
        let g = generators::power_law_temporal(RandomTemporalConfig {
            num_vertices: 50,
            num_edges: 160,
            time_span: 120,
            seed: 55,
        });
        let opts = SimpleCycleOptions::with_window(18);
        let reference = CollectingSink::new();
        johnson_simple(&g, &opts, &reference);
        for threads in [1, 2, 4, 8] {
            let sink = CollectingSink::new();
            fine_johnson_simple(&g, &opts, &sink, &ThreadPool::new(threads));
            assert_eq!(
                reference.canonical_cycles(),
                sink.canonical_cycles(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn max_len_constraint_matches_sequential() {
        let g = generators::complete_digraph(5);
        for max_len in 2..=4 {
            let opts = SimpleCycleOptions::unconstrained().max_len(max_len);
            let seq = CountingSink::new();
            johnson_simple(&g, &opts, &seq);
            let par = CountingSink::new();
            fine_johnson_simple(&g, &opts, &par, &ThreadPool::new(3));
            assert_eq!(seq.count(), par.count(), "max_len={max_len}");
        }
    }

    #[test]
    fn stress_with_many_threads_and_tiny_tasks() {
        // Many tiny rooted searches with aggressive stealing opportunities:
        // checks that the termination protocol and the copy-on-steal state
        // reconstruction never lose or duplicate cycles.
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 30,
            num_edges: 130,
            time_span: 70,
            seed: 321,
        });
        let opts = SimpleCycleOptions::with_window(14);
        let reference = CollectingSink::new();
        johnson_simple(&g, &opts, &reference);
        for _ in 0..3 {
            let sink = CollectingSink::new();
            fine_johnson_simple(&g, &opts, &sink, &ThreadPool::new(8));
            assert_eq!(reference.canonical_cycles(), sink.canonical_cycles());
        }
    }

    #[test]
    fn acyclic_graph_terminates_quickly() {
        let g = generators::directed_path(50);
        let sink = CountingSink::new();
        let stats = fine_johnson_simple(
            &g,
            &SimpleCycleOptions::unconstrained(),
            &sink,
            &ThreadPool::new(4),
        );
        assert_eq!(stats.cycles, 0);
    }
}
