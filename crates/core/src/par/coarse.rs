//! Coarse-grained parallel enumeration (§4).
//!
//! The search rooted at every edge is an independent task; tasks are
//! dynamically scheduled over the pool's workers (each worker repeatedly
//! claims the next unprocessed root edge). This is work efficient — every root
//! search performs exactly the work its sequential counterpart would — but not
//! scalable: a single root edge can own almost all of the work (Figure 4a has
//! `2^(n-2)` cycles behind one root edge), in which case adding workers cannot
//! reduce the execution time (Theorem 4.2).

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::{SimpleCycleOptions, TemporalCycleOptions};
use crate::seq::johnson::johnson_root;
use crate::seq::read_tarjan::read_tarjan_root;
use crate::seq::temporal::temporal_root;
use crate::seq::tiernan::tiernan_root;
use crate::seq::RootScratch;
use crate::{Algorithm, Granularity};
use pce_graph::{EdgeId, TemporalGraph};
use pce_sched::{DynamicCounter, ThreadPool};
use std::time::Instant;

/// The shared coarse-grained driver: workers claim root edges from a dynamic
/// counter and run `per_root` on each, winding down early when the sink stops
/// the run. Every coarse entry point (simple *and* temporal) is this loop
/// with a different per-root search plugged in.
fn run_coarse<S, F>(
    graph: &TemporalGraph,
    sink: &S,
    pool: &ThreadPool,
    algorithm: Algorithm,
    per_root: F,
) -> RunStats
where
    S: CycleSink,
    F: Fn(EdgeId, &mut RootScratch, &HaltingSink<'_, S>, &WorkMetrics, usize) + Sync,
{
    let threads = pool.num_threads();
    let metrics = WorkMetrics::new(threads);
    let start = Instant::now();
    let counter = DynamicCounter::new(graph.num_edges(), 1);
    let sink = HaltingSink::new(sink);

    pool.scope(|scope| {
        for _ in 0..threads {
            let counter = &counter;
            let metrics = &metrics;
            let sink = &sink;
            let per_root = &per_root;
            scope.spawn(move |_, ctx| {
                let worker = ctx.worker_id();
                let mut scratch = RootScratch::new(graph.num_vertices());
                while let Some(root) = counter.next() {
                    if sink.stopped() {
                        break;
                    }
                    let t0 = Instant::now();
                    per_root(root as EdgeId, &mut scratch, sink, metrics, worker);
                    metrics.add_busy(worker, t0.elapsed());
                }
            });
        }
    });

    RunStats {
        cycles: sink.count(),
        wall_secs: start.elapsed().as_secs_f64(),
        work: metrics.snapshot(),
        threads,
        ..RunStats::default()
    }
    .tagged(algorithm, Granularity::CoarseGrained)
}

/// Coarse-grained parallel Johnson: one dynamically scheduled task per root
/// edge, each running the sequential Johnson search.
pub fn coarse_johnson_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    run_coarse(
        graph,
        sink,
        pool,
        Algorithm::Johnson,
        |root, scratch, sink, metrics, worker| {
            johnson_root(graph, root, opts, scratch, sink, metrics, worker)
        },
    )
}

/// Coarse-grained parallel Read-Tarjan: one dynamically scheduled task per
/// root edge, each running the sequential Read-Tarjan search.
pub fn coarse_read_tarjan_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    run_coarse(
        graph,
        sink,
        pool,
        Algorithm::ReadTarjan,
        |root, scratch, sink, metrics, worker| {
            read_tarjan_root(graph, root, opts, scratch, sink, metrics, worker)
        },
    )
}

/// Coarse-grained parallel Tiernan (included for completeness as the
/// brute-force comparison point).
pub fn coarse_tiernan_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    run_coarse(
        graph,
        sink,
        pool,
        Algorithm::Tiernan,
        |root, _scratch, sink, metrics, worker| {
            tiernan_root(graph, root, opts, sink, metrics, worker)
        },
    )
}

/// Coarse-grained parallel temporal-cycle enumeration: one dynamically
/// scheduled task per root edge, each running the sequential temporal search
/// with cycle-union and closing-time pruning.
pub fn coarse_temporal<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &TemporalCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    run_coarse(
        graph,
        sink,
        pool,
        Algorithm::Johnson,
        |root, scratch, sink, metrics, worker| {
            temporal_root(graph, root, opts, scratch, sink, metrics, worker)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use crate::seq::johnson::johnson_simple;
    use crate::seq::temporal::temporal_simple;
    use pce_graph::generators::{self, RandomTemporalConfig};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn coarse_johnson_matches_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 20,
            num_edges: 90,
            time_span: 50,
            seed: 1,
        });
        let opts = SimpleCycleOptions::with_window(15);
        let seq = CollectingSink::new();
        johnson_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_johnson_simple(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn coarse_read_tarjan_matches_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 18,
            num_edges: 80,
            time_span: 60,
            seed: 2,
        });
        let opts = SimpleCycleOptions::with_window(18);
        let seq = CollectingSink::new();
        johnson_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_read_tarjan_simple(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn coarse_tiernan_matches_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 12,
            num_edges: 40,
            time_span: 30,
            seed: 3,
        });
        let opts = SimpleCycleOptions::unconstrained();
        let seq = CollectingSink::new();
        johnson_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_tiernan_simple(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn coarse_temporal_matches_sequential() {
        let g = generators::power_law_temporal(RandomTemporalConfig {
            num_vertices: 50,
            num_edges: 250,
            time_span: 120,
            seed: 4,
        });
        let opts = TemporalCycleOptions::with_window(60);
        let seq = CollectingSink::new();
        temporal_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_temporal(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn fig4a_single_root_counts_are_exact_for_any_thread_count() {
        let g = generators::fig4a_exponential_cycles(10);
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let sink = CountingSink::new();
            let stats =
                coarse_johnson_simple(&g, &SimpleCycleOptions::unconstrained(), &sink, &pool);
            assert_eq!(sink.count(), generators::fig4a_cycle_count(10));
            assert_eq!(stats.threads, threads);
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 16,
            num_edges: 70,
            time_span: 45,
            seed: 5,
        });
        let opts = SimpleCycleOptions::with_window(20);
        let reference = CollectingSink::new();
        coarse_johnson_simple(&g, &opts, &reference, &ThreadPool::new(1));
        for threads in [2, 3, 8] {
            let sink = CollectingSink::new();
            coarse_johnson_simple(&g, &opts, &sink, &ThreadPool::new(threads));
            assert_eq!(
                reference.canonical_cycles(),
                sink.canonical_cycles(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn busy_time_is_recorded_per_worker() {
        let g = generators::fig4a_exponential_cycles(12);
        let sink = CountingSink::new();
        let stats = coarse_johnson_simple(
            &g,
            &SimpleCycleOptions::unconstrained(),
            &sink,
            &ThreadPool::new(4),
        );
        // All of the work of fig4a hangs off a single root edge, so exactly
        // one worker should carry essentially all the busy time — the load
        // imbalance the paper's Figure 1a illustrates.
        assert!(stats.work.imbalance() > 1.5);
    }
}
