//! Coarse-grained parallel enumeration (§4).
//!
//! The search rooted at every edge is an independent task; tasks are
//! dynamically scheduled over the pool's workers (each worker repeatedly
//! claims the next unprocessed root edge). This is work efficient — every root
//! search performs exactly the work its sequential counterpart would — but not
//! scalable: a single root edge can own almost all of the work (Figure 4a has
//! `2^(n-2)` cycles behind one root edge), in which case adding workers cannot
//! reduce the execution time (Theorem 4.2).

use crate::cycle::CycleSink;
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::{SimpleCycleOptions, TemporalCycleOptions};
use crate::seq::johnson::johnson_root;
use crate::seq::read_tarjan::read_tarjan_root;
use crate::seq::temporal::temporal_root;
use crate::seq::tiernan::tiernan_root;
use crate::seq::RootScratch;
use pce_graph::{EdgeId, TemporalGraph};
use pce_sched::{DynamicCounter, ThreadPool};
use std::time::Instant;

/// Which per-root search the coarse-grained driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RootKind {
    Johnson,
    ReadTarjan,
    Tiernan,
}

fn run_coarse_simple(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &dyn CycleSink,
    pool: &ThreadPool,
    kind: RootKind,
) -> RunStats {
    let threads = pool.num_threads();
    let metrics = WorkMetrics::new(threads);
    let start = Instant::now();
    let counter = DynamicCounter::new(graph.num_edges(), 1);

    pool.scope(|scope| {
        for _ in 0..threads {
            let counter = &counter;
            let metrics = &metrics;
            let opts = &*opts;
            scope.spawn(move |_, ctx| {
                let worker = ctx.worker_id();
                let mut scratch = RootScratch::new(graph.num_vertices());
                while let Some(root) = counter.next() {
                    let root = root as EdgeId;
                    let t0 = Instant::now();
                    match kind {
                        RootKind::Johnson => {
                            johnson_root(graph, root, opts, &mut scratch, sink, metrics, worker)
                        }
                        RootKind::ReadTarjan => {
                            read_tarjan_root(graph, root, opts, &mut scratch, sink, metrics, worker)
                        }
                        RootKind::Tiernan => {
                            tiernan_root(graph, root, opts, sink, metrics, worker)
                        }
                    }
                    metrics.add_busy(worker, t0.elapsed());
                }
            });
        }
    });

    RunStats {
        cycles: sink.count(),
        wall_secs: start.elapsed().as_secs_f64(),
        work: metrics.snapshot(),
        threads,
    }
}

/// Coarse-grained parallel Johnson: one dynamically scheduled task per root
/// edge, each running the sequential Johnson search.
pub fn coarse_johnson_simple(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &dyn CycleSink,
    pool: &ThreadPool,
) -> RunStats {
    run_coarse_simple(graph, opts, sink, pool, RootKind::Johnson)
}

/// Coarse-grained parallel Read-Tarjan: one dynamically scheduled task per
/// root edge, each running the sequential Read-Tarjan search.
pub fn coarse_read_tarjan_simple(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &dyn CycleSink,
    pool: &ThreadPool,
) -> RunStats {
    run_coarse_simple(graph, opts, sink, pool, RootKind::ReadTarjan)
}

/// Coarse-grained parallel Tiernan (included for completeness as the
/// brute-force comparison point).
pub fn coarse_tiernan_simple(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &dyn CycleSink,
    pool: &ThreadPool,
) -> RunStats {
    run_coarse_simple(graph, opts, sink, pool, RootKind::Tiernan)
}

/// Coarse-grained parallel temporal-cycle enumeration: one dynamically
/// scheduled task per root edge, each running the sequential temporal search
/// with cycle-union and closing-time pruning.
pub fn coarse_temporal(
    graph: &TemporalGraph,
    opts: &TemporalCycleOptions,
    sink: &dyn CycleSink,
    pool: &ThreadPool,
) -> RunStats {
    let threads = pool.num_threads();
    let metrics = WorkMetrics::new(threads);
    let start = Instant::now();
    let counter = DynamicCounter::new(graph.num_edges(), 1);

    pool.scope(|scope| {
        for _ in 0..threads {
            let counter = &counter;
            let metrics = &metrics;
            let opts = &*opts;
            scope.spawn(move |_, ctx| {
                let worker = ctx.worker_id();
                let mut scratch = RootScratch::new(graph.num_vertices());
                while let Some(root) = counter.next() {
                    let t0 = Instant::now();
                    temporal_root(graph, root as EdgeId, opts, &mut scratch, sink, metrics, worker);
                    metrics.add_busy(worker, t0.elapsed());
                }
            });
        }
    });

    RunStats {
        cycles: sink.count(),
        wall_secs: start.elapsed().as_secs_f64(),
        work: metrics.snapshot(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use crate::seq::johnson::johnson_simple;
    use crate::seq::temporal::temporal_simple;
    use pce_graph::generators::{self, RandomTemporalConfig};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn coarse_johnson_matches_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 20,
            num_edges: 90,
            time_span: 50,
            seed: 1,
        });
        let opts = SimpleCycleOptions::with_window(15);
        let seq = CollectingSink::new();
        johnson_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_johnson_simple(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn coarse_read_tarjan_matches_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 18,
            num_edges: 80,
            time_span: 60,
            seed: 2,
        });
        let opts = SimpleCycleOptions::with_window(18);
        let seq = CollectingSink::new();
        johnson_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_read_tarjan_simple(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn coarse_tiernan_matches_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 12,
            num_edges: 40,
            time_span: 30,
            seed: 3,
        });
        let opts = SimpleCycleOptions::unconstrained();
        let seq = CollectingSink::new();
        johnson_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_tiernan_simple(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn coarse_temporal_matches_sequential() {
        let g = generators::power_law_temporal(RandomTemporalConfig {
            num_vertices: 50,
            num_edges: 250,
            time_span: 120,
            seed: 4,
        });
        let opts = TemporalCycleOptions::with_window(60);
        let seq = CollectingSink::new();
        temporal_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        coarse_temporal(&g, &opts, &par, &pool());
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn fig4a_single_root_counts_are_exact_for_any_thread_count() {
        let g = generators::fig4a_exponential_cycles(10);
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let sink = CountingSink::new();
            let stats =
                coarse_johnson_simple(&g, &SimpleCycleOptions::unconstrained(), &sink, &pool);
            assert_eq!(sink.count(), generators::fig4a_cycle_count(10));
            assert_eq!(stats.threads, threads);
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 16,
            num_edges: 70,
            time_span: 45,
            seed: 5,
        });
        let opts = SimpleCycleOptions::with_window(20);
        let reference = CollectingSink::new();
        coarse_johnson_simple(&g, &opts, &reference, &ThreadPool::new(1));
        for threads in [2, 3, 8] {
            let sink = CollectingSink::new();
            coarse_johnson_simple(&g, &opts, &sink, &ThreadPool::new(threads));
            assert_eq!(
                reference.canonical_cycles(),
                sink.canonical_cycles(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn busy_time_is_recorded_per_worker() {
        let g = generators::fig4a_exponential_cycles(12);
        let sink = CountingSink::new();
        let stats = coarse_johnson_simple(
            &g,
            &SimpleCycleOptions::unconstrained(),
            &sink,
            &ThreadPool::new(4),
        );
        // All of the work of fig4a hangs off a single root edge, so exactly
        // one worker should carry essentially all the busy time — the load
        // imbalance the paper's Figure 1a illustrates.
        assert!(stats.work.imbalance() > 1.5);
    }
}
