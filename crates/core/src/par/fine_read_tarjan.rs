//! The fine-grained parallel Read-Tarjan algorithm (§6).
//!
//! Every Read-Tarjan recursive call is executed as an independent task: a
//! child call receives copies of the current path and of its parent's blocked
//! set and never communicates anything back, so the tasks can be scheduled in
//! any order on any worker. Workers claim root edges dynamically; the first
//! call of each root runs on the claiming worker and every spawned child is
//! pushed onto that worker's local deque, from which idle workers steal —
//! which is exactly how the long searches of skewed graphs get spread across
//! the machine.
//!
//! Because the pruning state of the sequential algorithm is already private to
//! each call, the parallel version performs the same `O((n+e)(c+1))` work as
//! the sequential one: it is *work efficient* (Theorem 6.1) as well as
//! scalable (Theorem 6.2).

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::SimpleCycleOptions;
use crate::seq::read_tarjan::{rt_call, rt_initial_state, RtCallState, RtContext};
use crate::seq::{handle_self_loop_root, RootScratch};
use crate::union::UnionView;
use crate::{Algorithm, Granularity};
use pce_graph::{EdgeId, TemporalGraph, TimeWindow};
use pce_sched::{DynamicCounter, Scope, ThreadPool, WorkerCtx};
use std::sync::Arc;
use std::time::Instant;

/// Everything a Read-Tarjan task needs besides its own call state; lives on
/// the stack of the enumeration entry point for the duration of the scope.
struct FineRtShared<'a, S> {
    graph: &'a TemporalGraph,
    sink: &'a HaltingSink<'a, S>,
    metrics: &'a WorkMetrics,
    opts: &'a SimpleCycleOptions,
}

/// A unit of work: one Read-Tarjan recursive call for one root edge.
struct FineRtTask {
    root: EdgeId,
    union: Arc<UnionView>,
    state: RtCallState,
}

fn execute_task<'scope, S: CycleSink>(
    shared: &'scope FineRtShared<'scope, S>,
    task: FineRtTask,
    scope: &Scope<'scope>,
    ctx: &WorkerCtx<'_>,
) {
    // A task scheduled after the sink stopped the run returns immediately
    // (and spawns nothing), so the scope drains quickly without deadlock.
    if shared.sink.stopped() {
        return;
    }
    let worker = ctx.worker_id();
    let start = Instant::now();
    let e0 = shared.graph.edge(task.root);
    let rt_ctx = RtContext {
        graph: shared.graph,
        sink: shared.sink,
        metrics: shared.metrics,
        opts: shared.opts,
        union: &*task.union,
        root: task.root,
        v0: e0.src,
        window: TimeWindow::from_start(e0.ts, shared.opts.effective_delta()),
    };
    let root = task.root;
    let union = &task.union;
    rt_call(&rt_ctx, worker, task.state, &mut |child| {
        // Each child call becomes an independently schedulable task. It goes
        // to this worker's local deque: executed depth-first locally unless an
        // idle worker steals it.
        let child_task = FineRtTask {
            root,
            union: Arc::clone(union),
            state: child,
        };
        ctx.spawn(scope, move |scope, ctx| {
            execute_task(shared, child_task, scope, ctx);
        });
    });
    shared.metrics.add_busy(worker, start.elapsed());
}

/// Fine-grained parallel Read-Tarjan enumeration of all (window-constrained)
/// simple cycles.
pub fn fine_read_tarjan_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    let threads = pool.num_threads();
    let metrics = WorkMetrics::new(threads);
    let start = Instant::now();
    let counter = DynamicCounter::new(graph.num_edges(), 1);
    let sink = HaltingSink::new(sink);
    let shared = FineRtShared {
        graph,
        sink: &sink,
        metrics: &metrics,
        opts,
    };

    pool.scope(|scope| {
        for _ in 0..threads {
            let counter = &counter;
            let shared = &shared;
            scope.spawn(move |scope, ctx| {
                let worker = ctx.worker_id();
                let mut scratch = RootScratch::new(shared.graph.num_vertices());
                while let Some(root) = counter.next() {
                    if shared.sink.stopped() {
                        break;
                    }
                    let root = root as EdgeId;
                    let prep = Instant::now();
                    if handle_self_loop_root(shared.graph, root, shared.opts, shared.sink) {
                        continue;
                    }
                    let e0 = shared.graph.edge(root);
                    let window = TimeWindow::from_start(e0.ts, shared.opts.effective_delta());
                    if !scratch.union.compute_simple(shared.graph, root, window) {
                        shared.metrics.add_busy(worker, prep.elapsed());
                        continue;
                    }
                    shared.metrics.root_processed(worker);
                    let union = Arc::new(UnionView::from_simple(&scratch.union));
                    let rt_ctx = RtContext {
                        graph: shared.graph,
                        sink: shared.sink,
                        metrics: shared.metrics,
                        opts: shared.opts,
                        union: &*union,
                        root,
                        v0: e0.src,
                        window,
                    };
                    let initial = rt_initial_state(&rt_ctx, worker, root);
                    shared.metrics.add_busy(worker, prep.elapsed());
                    if let Some(state) = initial {
                        execute_task(
                            shared,
                            FineRtTask {
                                root,
                                union: Arc::clone(&union),
                                state,
                            },
                            scope,
                            ctx,
                        );
                    }
                }
            });
        }
    });

    RunStats {
        cycles: sink.count(),
        wall_secs: start.elapsed().as_secs_f64(),
        work: metrics.snapshot(),
        threads,
        ..RunStats::default()
    }
    .tagged(Algorithm::ReadTarjan, Granularity::FineGrained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use crate::seq::johnson::johnson_simple;
    use crate::seq::read_tarjan::read_tarjan_simple;
    use pce_graph::generators::{self, RandomTemporalConfig};

    #[test]
    fn matches_sequential_read_tarjan() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 18,
            num_edges: 80,
            time_span: 50,
            seed: 11,
        });
        let opts = SimpleCycleOptions::with_window(30);
        let seq = CollectingSink::new();
        read_tarjan_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        fine_read_tarjan_simple(&g, &opts, &par, &ThreadPool::new(4));
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn fig4a_exponential_cycles_spread_across_workers() {
        // Deflaked: on a 1-core executor the OS may legally run the whole
        // search on one worker before any other thread wakes, so the spread
        // assertion only holds with real parallelism — verify the count and
        // skip the spread check there. On a multicore, a worker can still
        // occasionally drain the task tree before a sibling steals (the
        // search cannot host a rendezvous without changing the algorithm), so
        // the spread assertion gets a handful of attempts; the cycle count is
        // asserted on every run.
        let g = generators::fig4a_exponential_cycles(12);
        let expected = generators::fig4a_cycle_count(12);
        let single_core = pce_sched::available_parallelism() < 2;
        let attempts = if single_core { 1 } else { 5 };
        let mut last_active = 0;
        for attempt in 0..attempts {
            let sink = CountingSink::new();
            let stats = fine_read_tarjan_simple(
                &g,
                &SimpleCycleOptions::unconstrained(),
                &sink,
                &ThreadPool::new(4),
            );
            assert_eq!(sink.count(), expected, "attempt {attempt}");
            // With 1024 cycles behind a single root edge, fine-grained tasks
            // should spread across workers.
            last_active = stats
                .work
                .workers
                .iter()
                .filter(|w| w.recursive_calls > 0)
                .count();
            if last_active > 1 {
                return;
            }
        }
        if single_core {
            eprintln!("skipping worker-spread assertion: single-core executor");
            return;
        }
        panic!("expected multiple workers to execute tasks in {attempts} runs, got {last_active}");
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let g = generators::power_law_temporal(RandomTemporalConfig {
            num_vertices: 40,
            num_edges: 140,
            time_span: 90,
            seed: 13,
        });
        let opts = SimpleCycleOptions::with_window(16);
        let reference = CollectingSink::new();
        johnson_simple(&g, &opts, &reference);
        for threads in [1, 2, 4, 8] {
            let sink = CollectingSink::new();
            fine_read_tarjan_simple(&g, &opts, &sink, &ThreadPool::new(threads));
            assert_eq!(
                reference.canonical_cycles(),
                sink.canonical_cycles(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn max_len_constraint_respected() {
        let g = generators::complete_digraph(5);
        let opts = SimpleCycleOptions::unconstrained().max_len(3);
        let seq = CountingSink::new();
        read_tarjan_simple(&g, &opts, &seq);
        let par = CountingSink::new();
        fine_read_tarjan_simple(&g, &opts, &par, &ThreadPool::new(3));
        assert_eq!(seq.count(), par.count());
    }

    #[test]
    fn empty_and_acyclic_graphs() {
        let g = generators::directed_path(20);
        let sink = CountingSink::new();
        let stats = fine_read_tarjan_simple(
            &g,
            &SimpleCycleOptions::unconstrained(),
            &sink,
            &ThreadPool::new(2),
        );
        assert_eq!(stats.cycles, 0);
    }
}
