//! Parallel enumeration algorithms.
//!
//! * [`coarse`] — the coarse-grained parallel versions of §4: one task per
//!   starting (root) edge, dynamically scheduled. Work efficient but not
//!   scalable (Theorem 4.2).
//! * [`fine_johnson`] — the fine-grained parallel Johnson algorithm of §5:
//!   unexplored branches of an active rooted search can be stolen by idle
//!   workers via copy-on-steal with recursive unblocking. Scalable but not
//!   work efficient (Theorems 5.1/5.2).
//! * [`fine_read_tarjan`] — the fine-grained parallel Read-Tarjan algorithm of
//!   §6: every recursive call is an independent task carrying copies of its
//!   path and blocked set. Both scalable and work efficient (Theorems
//!   6.1/6.2).
//! * [`fine_temporal`] — the temporal-cycle versions of the fine-grained
//!   algorithms (§7), built on the scalable cycle-union preprocessing.

pub mod coarse;
pub mod fine_johnson;
pub mod fine_read_tarjan;
pub mod fine_temporal;
