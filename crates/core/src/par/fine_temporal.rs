//! Fine-grained parallel temporal-cycle enumeration (§7).
//!
//! The temporal searches are built on the scalable per-root preprocessing
//! (cycle-union + static closing times), which makes their per-call pruning
//! state read-only; a recursive call therefore only needs a private copy of
//! its path, and every call can be executed as an independent task — the
//! temporal analogue of the fine-grained decomposition of §5/§6.
//!
//! Two task-spawning disciplines are provided, mirroring the two algorithm
//! families the paper evaluates on temporal graphs:
//!
//! * [`fine_temporal_johnson`] — a child task is spawned for every admissible
//!   branch (the Johnson-style decomposition: claim first, discover dead ends
//!   as you go).
//! * [`fine_temporal_read_tarjan`] — before spawning a child for a branch, a
//!   depth-first probe verifies that the branch can still be completed into a
//!   cycle (the Read-Tarjan-style "path extension must exist" discipline).
//!   This performs more edge visits — the paper reports ~47% more for the
//!   Read-Tarjan family — but never schedules a task that cannot produce a
//!   cycle.

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::TemporalCycleOptions;
use crate::seq::RootScratch;
use crate::union::{UnionQuery, UnionView};
use crate::util::{fx_set, FxHashSet};
use crate::{Algorithm, Granularity};
use pce_graph::{EdgeId, TemporalGraph, TimeWindow, Timestamp, VertexId};
use pce_sched::{DynamicCounter, Scope, ThreadPool, WorkerCtx};
use std::sync::Arc;
use std::time::Instant;

/// Which fine-grained spawning discipline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalStyle {
    /// Spawn a task per admissible branch (Johnson-style).
    Johnson,
    /// Probe for a feasible completion before spawning (Read-Tarjan-style).
    ReadTarjan,
}

struct FineTemporalShared<'a, S> {
    graph: &'a TemporalGraph,
    sink: &'a HaltingSink<'a, S>,
    metrics: &'a WorkMetrics,
    opts: &'a TemporalCycleOptions,
    style: TemporalStyle,
}

/// One task: extend the given temporal path from its last vertex.
struct TemporalTask {
    root: EdgeId,
    v0: VertexId,
    t_end: Timestamp,
    union: Arc<UnionView>,
    path: Vec<VertexId>,
    path_edges: Vec<EdgeId>,
    on_path: FxHashSet<VertexId>,
    arrival: Timestamp,
}

/// Depth-first probe: does a temporal path from `start` (arriving at
/// `arrival`) back to `v0` exist that avoids `on_path`? Uses the static
/// closing-time bound for pruning; visited dead ends are memoised in a local
/// set for the duration of the probe.
#[allow(clippy::too_many_arguments)]
fn has_completion<S: CycleSink>(
    shared: &FineTemporalShared<'_, S>,
    worker: usize,
    union: &UnionView,
    v0: VertexId,
    t_end: Timestamp,
    on_path: &FxHashSet<VertexId>,
    start: VertexId,
    arrival: Timestamp,
) -> bool {
    let mut stack: Vec<(VertexId, Timestamp)> = vec![(start, arrival)];
    let mut seen: FxHashSet<(VertexId, Timestamp)> = fx_set();
    seen.insert((start, arrival));
    while let Some((v, t)) = stack.pop() {
        let window = TimeWindow::new(t.saturating_add(1), t_end);
        for &entry in shared.graph.out_edges_in_window(v, window) {
            shared.metrics.edge_visit(worker);
            let w = entry.neighbor;
            if w == v0 {
                return true;
            }
            if on_path.contains(&w) || !union.in_union(w) || !union.can_close_after(w, entry.ts) {
                continue;
            }
            if seen.insert((w, entry.ts)) {
                stack.push((w, entry.ts));
            }
        }
    }
    false
}

fn execute_task<'scope, S: CycleSink>(
    shared: &'scope FineTemporalShared<'scope, S>,
    task: TemporalTask,
    scope: &Scope<'scope>,
    ctx: &WorkerCtx<'_>,
) {
    // A task scheduled after the sink stopped the run returns immediately
    // (and spawns nothing), so the scope drains quickly without deadlock.
    if shared.sink.stopped() {
        return;
    }
    let worker = ctx.worker_id();
    let start = Instant::now();
    shared.metrics.recursive_call(worker);
    let v = *task.path.last().expect("path never empty");
    let window = TimeWindow::new(task.arrival.saturating_add(1), task.t_end);
    for &entry in shared.graph.out_edges_in_window(v, window) {
        if shared.sink.stopped() {
            break;
        }
        shared.metrics.edge_visit(worker);
        let w = entry.neighbor;
        if w == task.v0 {
            if shared.opts.len_ok(task.path_edges.len() + 1) {
                let mut edges = task.path_edges.clone();
                edges.push(entry.edge);
                shared.sink.push(&task.path, &edges);
            }
            continue;
        }
        if task.on_path.contains(&w)
            || !task.union.in_union(w)
            || !task.union.can_close_after(w, entry.ts)
            || !shared.opts.len_ok(task.path_edges.len() + 2)
        {
            continue;
        }
        if shared.style == TemporalStyle::ReadTarjan {
            // Read-Tarjan discipline: only descend when a completion exists.
            let mut probe_avoid = task.on_path.clone();
            probe_avoid.insert(w);
            if !has_completion(
                shared,
                worker,
                &task.union,
                task.v0,
                task.t_end,
                &probe_avoid,
                w,
                entry.ts,
            ) {
                continue;
            }
        }
        // Spawn the child call as an independent task with its own copies.
        shared.metrics.copy_event(worker);
        let mut child_path = task.path.clone();
        let mut child_edges = task.path_edges.clone();
        let mut child_on_path = task.on_path.clone();
        child_path.push(w);
        child_edges.push(entry.edge);
        child_on_path.insert(w);
        let child = TemporalTask {
            root: task.root,
            v0: task.v0,
            t_end: task.t_end,
            union: Arc::clone(&task.union),
            path: child_path,
            path_edges: child_edges,
            on_path: child_on_path,
            arrival: entry.ts,
        };
        ctx.spawn(scope, move |scope, ctx| {
            execute_task(shared, child, scope, ctx);
        });
    }
    shared.metrics.add_busy(worker, start.elapsed());
}

fn run_fine_temporal<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &TemporalCycleOptions,
    sink: &S,
    pool: &ThreadPool,
    style: TemporalStyle,
) -> RunStats {
    let threads = pool.num_threads();
    let metrics = WorkMetrics::new(threads);
    let start = Instant::now();
    let counter = DynamicCounter::new(graph.num_edges(), 1);
    let sink = HaltingSink::new(sink);
    let shared = FineTemporalShared {
        graph,
        sink: &sink,
        metrics: &metrics,
        opts,
        style,
    };

    pool.scope(|scope| {
        for _ in 0..threads {
            let counter = &counter;
            let shared = &shared;
            scope.spawn(move |scope, ctx| {
                let worker = ctx.worker_id();
                let mut scratch = RootScratch::new(shared.graph.num_vertices());
                while let Some(root) = counter.next() {
                    if shared.sink.stopped() {
                        break;
                    }
                    let root = root as EdgeId;
                    let e0 = shared.graph.edge(root);
                    if e0.src == e0.dst {
                        continue;
                    }
                    let prep = Instant::now();
                    if !scratch
                        .union
                        .compute_temporal(shared.graph, root, shared.opts.window_delta)
                    {
                        shared.metrics.add_busy(worker, prep.elapsed());
                        continue;
                    }
                    shared.metrics.root_processed(worker);
                    let union = Arc::new(UnionView::from_temporal(&scratch.union));
                    shared.metrics.add_busy(worker, prep.elapsed());
                    let mut on_path = fx_set();
                    on_path.insert(e0.src);
                    on_path.insert(e0.dst);
                    let task = TemporalTask {
                        root,
                        v0: e0.src,
                        t_end: e0.ts.saturating_add(shared.opts.window_delta),
                        union,
                        path: vec![e0.src, e0.dst],
                        path_edges: vec![root],
                        on_path,
                        arrival: e0.ts,
                    };
                    execute_task(shared, task, scope, ctx);
                }
            });
        }
    });

    let algorithm = match style {
        TemporalStyle::Johnson => Algorithm::Johnson,
        TemporalStyle::ReadTarjan => Algorithm::ReadTarjan,
    };
    RunStats {
        cycles: sink.count(),
        wall_secs: start.elapsed().as_secs_f64(),
        work: metrics.snapshot(),
        threads,
        ..RunStats::default()
    }
    .tagged(algorithm, Granularity::FineGrained)
}

/// Fine-grained parallel temporal-cycle enumeration, Johnson-style task
/// decomposition.
pub fn fine_temporal_johnson<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &TemporalCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    run_fine_temporal(graph, opts, sink, pool, TemporalStyle::Johnson)
}

/// Fine-grained parallel temporal-cycle enumeration, Read-Tarjan-style task
/// decomposition (probe before descending).
pub fn fine_temporal_read_tarjan<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &TemporalCycleOptions,
    sink: &S,
    pool: &ThreadPool,
) -> RunStats {
    run_fine_temporal(graph, opts, sink, pool, TemporalStyle::ReadTarjan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use crate::seq::temporal::temporal_simple;
    use pce_graph::generators::{self, RandomTemporalConfig, TransactionRingConfig};

    #[test]
    fn johnson_style_matches_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 25,
            num_edges: 160,
            time_span: 90,
            seed: 31,
        });
        let opts = TemporalCycleOptions::with_window(40);
        let seq = CollectingSink::new();
        temporal_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        fine_temporal_johnson(&g, &opts, &par, &ThreadPool::new(4));
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn read_tarjan_style_matches_sequential() {
        let g = generators::power_law_temporal(RandomTemporalConfig {
            num_vertices: 40,
            num_edges: 220,
            time_span: 100,
            seed: 32,
        });
        let opts = TemporalCycleOptions::with_window(50);
        let seq = CollectingSink::new();
        temporal_simple(&g, &opts, &seq);
        let par = CollectingSink::new();
        fine_temporal_read_tarjan(&g, &opts, &par, &ThreadPool::new(4));
        assert_eq!(seq.canonical_cycles(), par.canonical_cycles());
    }

    #[test]
    fn read_tarjan_style_visits_more_edges() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 30,
            num_edges: 250,
            time_span: 60,
            seed: 33,
        });
        let opts = TemporalCycleOptions::with_window(40);
        let pool = ThreadPool::new(2);
        let a = CountingSink::new();
        let stats_j = fine_temporal_johnson(&g, &opts, &a, &pool);
        let b = CountingSink::new();
        let stats_rt = fine_temporal_read_tarjan(&g, &opts, &b, &pool);
        assert_eq!(a.count(), b.count());
        assert!(
            stats_rt.work.total_edge_visits() >= stats_j.work.total_edge_visits(),
            "probing discipline should not visit fewer edges"
        );
    }

    #[test]
    fn results_independent_of_thread_count() {
        let (g, _) = generators::transaction_rings(TransactionRingConfig {
            num_accounts: 150,
            background_edges: 400,
            num_rings: 10,
            ring_len: (3, 5),
            time_span: 500_000,
            ring_span: 3_000,
            seed: 34,
        });
        let opts = TemporalCycleOptions::with_window(3_000);
        let reference = CollectingSink::new();
        temporal_simple(&g, &opts, &reference);
        for threads in [1, 2, 4, 8] {
            let sink = CollectingSink::new();
            fine_temporal_johnson(&g, &opts, &sink, &ThreadPool::new(threads));
            assert_eq!(
                reference.canonical_cycles(),
                sink.canonical_cycles(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn max_len_respected() {
        let g = generators::directed_cycle(6);
        let opts = TemporalCycleOptions::with_window(100).max_len(5);
        let sink = CountingSink::new();
        fine_temporal_johnson(&g, &opts, &sink, &ThreadPool::new(2));
        assert_eq!(sink.count(), 0);
        let opts = TemporalCycleOptions::with_window(100).max_len(6);
        let sink = CountingSink::new();
        fine_temporal_johnson(&g, &opts, &sink, &ThreadPool::new(2));
        assert_eq!(sink.count(), 1);
    }
}
