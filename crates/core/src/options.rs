//! Enumeration options: the constraints of the paper's Table 2 (time windows,
//! cycle-length bounds) and execution parameters shared by every enumerator.

use pce_graph::Timestamp;
use serde::{Deserialize, Serialize};

/// Constraints for **simple cycle** enumeration (window-constrained or
/// unconstrained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimpleCycleOptions {
    /// Time-window size δ: a cycle qualifies iff all of its edge timestamps
    /// fit in a window of this size (the window is anchored at the cycle's
    /// earliest edge). `None` disables the constraint (classic simple cycle
    /// enumeration — beware, intractable on large cyclic graphs).
    pub window_delta: Option<Timestamp>,
    /// Maximum number of edges in a cycle. `None` means unbounded.
    pub max_len: Option<usize>,
    /// Whether length-1 cycles (self-loops) are reported. The paper's
    /// evaluation (and most applications) ignores self-loops; defaults to
    /// `false`.
    pub include_self_loops: bool,
}

impl SimpleCycleOptions {
    /// Unconstrained enumeration (no window, no length bound).
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// Window-constrained enumeration with window size `delta`.
    pub fn with_window(delta: Timestamp) -> Self {
        Self {
            window_delta: Some(delta),
            ..Self::default()
        }
    }

    /// Sets the maximum cycle length (number of edges).
    pub fn max_len(mut self, len: usize) -> Self {
        self.max_len = Some(len);
        self
    }

    /// Enables reporting of self-loops.
    pub fn include_self_loops(mut self, yes: bool) -> Self {
        self.include_self_loops = yes;
        self
    }

    /// The effective window size: `i64::MAX` when unconstrained.
    pub(crate) fn effective_delta(&self) -> Timestamp {
        self.window_delta.unwrap_or(Timestamp::MAX)
    }

    /// Returns `true` if a cycle with `len` edges satisfies the length bound.
    #[inline]
    pub(crate) fn len_ok(&self, len: usize) -> bool {
        self.max_len.map(|m| len <= m).unwrap_or(true)
    }
}

/// Constraints for **temporal cycle** enumeration (edges strictly increasing
/// in time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalCycleOptions {
    /// Time-window size δ: every edge of the cycle must have a timestamp in
    /// `[t_first : t_first + δ]` where `t_first` is the first (smallest)
    /// timestamp of the cycle.
    pub window_delta: Timestamp,
    /// Maximum number of edges in a cycle. `None` means unbounded.
    pub max_len: Option<usize>,
}

impl TemporalCycleOptions {
    /// Temporal enumeration with window size `delta` and no length bound.
    pub fn with_window(delta: Timestamp) -> Self {
        Self {
            window_delta: delta,
            max_len: None,
        }
    }

    /// Sets the maximum cycle length (number of edges).
    pub fn max_len(mut self, len: usize) -> Self {
        self.max_len = Some(len);
        self
    }

    /// Returns `true` if a cycle with `len` edges satisfies the length bound.
    #[inline]
    pub(crate) fn len_ok(&self, len: usize) -> bool {
        self.max_len.map(|m| len <= m).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_defaults() {
        let o = SimpleCycleOptions::default();
        assert_eq!(o.window_delta, None);
        assert_eq!(o.max_len, None);
        assert!(!o.include_self_loops);
        assert_eq!(o.effective_delta(), Timestamp::MAX);
        assert!(o.len_ok(1_000_000));
    }

    #[test]
    fn simple_builders() {
        let o = SimpleCycleOptions::with_window(100)
            .max_len(5)
            .include_self_loops(true);
        assert_eq!(o.window_delta, Some(100));
        assert_eq!(o.effective_delta(), 100);
        assert!(o.len_ok(5));
        assert!(!o.len_ok(6));
        assert!(o.include_self_loops);
    }

    #[test]
    fn temporal_builders() {
        let o = TemporalCycleOptions::with_window(3600).max_len(4);
        assert_eq!(o.window_delta, 3600);
        assert!(o.len_ok(4));
        assert!(!o.len_ok(5));
    }
}
