//! The incremental sliding-window enumeration subsystem: continuous cycle
//! detection over a stream of temporal edge batches.
//!
//! [`StreamingEngine`] glues the three streaming pieces together:
//!
//! 1. **Ingest** — each [`StreamingEngine::ingest`] call appends one batch to
//!    an incrementally-maintained
//!    [`SlidingWindowGraph`] (`O(batch)`
//!    amortised, no rebuild) and slides the retention window forward,
//!    expiring edges older than `watermark - retention`.
//! 2. **Delta query** — only cycles *closed by the new batch* are enumerated:
//!    every cycle is rooted at its maximum `(timestamp, id)` edge, which lies
//!    in exactly one batch (see [`crate::delta`]). The batch's roots are
//!    processed at the standing query's [`Granularity`] on the engine's
//!    reusable thread pool: sequentially, as one dynamically-scheduled task
//!    per root (coarse), or as copyable recursion-level tasks stolen
//!    mid-search (fine — the right choice for skewed batches whose cycles
//!    hang off one hot root).
//! 3. **Resolution** — discovered cycles are resolved to concrete
//!    [`TemporalEdge`] sequences ([`StreamCycle`]) before returning, because
//!    dense edge ids are re-based when the window compacts.
//!
//! # The equivalence guarantee
//!
//! Over any replayed stream, each cycle is reported exactly once — at the
//! batch whose arrival completes it — and the reports are **independent of
//! how the stream is chopped into batches**: `window_delta <= retention`
//! (enforced at construction) guarantees that every edge a closing root can
//! need is still stored when it arrives, so a cycle spanning at most δ is
//! announced with its closing edge no matter the batch boundaries.
//! Consequently:
//!
//! * every cycle that lies fully inside the **final** window has been
//!   reported by some batch, and
//! * the union of per-batch delta results, restricted to cycles whose edges
//!   all survive in the final window, equals a one-shot enumeration of
//!   [`StreamingEngine::snapshot`]. With no expiry (retention spanning the
//!   whole stream) the union is exactly the one-shot result.
//!
//! `tests/streaming.rs` asserts this equivalence across seeds, batch sizes
//! (including batches that straddle window expiry), algorithms, delta
//! granularities and thread counts — byte-identical results for every
//! configuration.
//!
//! # Serving many queries from one stream
//!
//! A [`StreamingEngine`] owns its graph, so N standing queries over the same
//! stream would cost N ingest/expiry passes and N delta scans per batch.
//! [`MultiStreamingEngine`] is the multi-tenant front end:
//! [`subscribe`](MultiStreamingEngine::subscribe) any number of
//! [`StreamingQuery`]s (each gets a stable [`QueryId`]), and every
//! [`ingest`](MultiStreamingEngine::ingest) pays **one** append/expiry pass,
//! **one** delta root scan and **one** per-root backward union/pruning pass —
//! at the widest subscribed window and the *union hull* of the subscribed
//! [`CyclePredicate`]s (per-edge constraints union, aggregate bounds loosen
//! to the widest interval, positional constraints to per-position unions,
//! vertex sets to set-union — pushed into traversal, so rejected edges never
//! enter the cycle unions; see
//! [`MultiStreamingEngine::with_pushdown`]) — then routes each candidate
//! cycle to the subscriptions that accept it before fanning results out to
//! per-query [`BatchReport`]s. Routing uses a constraint-indexed
//! [`SubscriptionIndex`] by default ([`FanOutStrategy::Indexed`]):
//! subscriptions are bucketed into `(kind, self-loops, predicate-profile)`
//! cohorts and deduplicated into `(δ, max_len)` constraint groups, so
//! per-candidate dispatch cost scales with *distinct constraint profiles*
//! rather than with the subscriber count, and large portfolios dispatch as
//! parallel tasks on the engine's pool. The per-query outputs are
//! byte-identical to dedicated engines — and to the naive per-candidate loop
//! ([`FanOutStrategy::Naive`]) — proven by the differential harnesses in
//! `tests/streaming.rs`.
//!
//! # Relation to [`Engine::stream`]
//!
//! [`Engine::stream`] pushes the results of **one** query to a consumer with
//! backpressure; `StreamingEngine` answers **many** incremental queries as
//! the *graph* changes. They compose: each batch's resolved cycles are
//! returned synchronously precisely so that a serving layer can forward them
//! into any transport — including a backpressured channel — without the
//! enumeration pipeline ever blocking on a slow consumer.

use crate::cycle::{CollectingSink, CountingSink, Cycle, CycleSink};
use crate::delta::{
    delta_simple_assist_with_scratch, delta_simple_fine_with_scratch,
    delta_simple_parallel_with_scratch, delta_simple_sharded_with_scratch,
    delta_simple_with_scratch, delta_temporal_assist_with_scratch,
    delta_temporal_fine_with_scratch, delta_temporal_parallel_with_scratch,
    delta_temporal_sharded_with_scratch, delta_temporal_with_scratch,
};
use crate::engine::{CollectMode, CycleKind, Engine, EnumerationError, Granularity, SchedStrategy};
use crate::metrics::{LatencyStats, RunStats};
use crate::options::{SimpleCycleOptions, TemporalCycleOptions};
use crate::seq::RootScratch;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pce_graph::stream::{SlidingWindowGraph, StreamError};
use pce_graph::{
    Amount, CyclePredicate, EdgeId, EdgePredicate, GraphView, Label, ShardSpec, TemporalEdge,
    TemporalGraph, TimeWindow, Timestamp, VertexFilter, VertexId,
};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Errors produced by the streaming subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamingError {
    /// The ingest path rejected a batch (e.g. out-of-order timestamps); the
    /// graph is unchanged and the stream can continue with a corrected batch.
    Stream(StreamError),
    /// The streaming query failed validation (zero window, zero max length,
    /// or a combination with no implementation such as temporal self-loops).
    Query(EnumerationError),
    /// The query's time window is wider than the graph's retention span, so
    /// cycles could silently vanish before their closing edge arrives. Grow
    /// the retention or shrink the window.
    RetentionTooSmall {
        /// The requested enumeration window size δ.
        delta: Timestamp,
        /// The configured retention span.
        retention: Timestamp,
    },
    /// A [`restore_subscription`](MultiStreamingEngine::restore_subscription)
    /// call presented an id at or below one this engine already issued —
    /// restores must replay a checkpointed registry in ascending-id order
    /// onto an engine that has not subscribed on its own.
    RestoreIdCollision {
        /// The rejected id.
        id: QueryId,
        /// The smallest id this engine would accept.
        next_id: u64,
    },
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingError::Stream(e) => write!(f, "stream ingest error: {e}"),
            StreamingError::Query(e) => write!(f, "invalid streaming query: {e}"),
            StreamingError::RetentionTooSmall { delta, retention } => write!(
                f,
                "window delta {delta} exceeds retention {retention}: cycles would expire \
                 before their closing edge arrives"
            ),
            StreamingError::RestoreIdCollision { id, next_id } => write!(
                f,
                "restored subscription id {id} collides with issued ids \
                 (smallest acceptable is {next_id})"
            ),
        }
    }
}

impl std::error::Error for StreamingError {}

impl From<StreamError> for StreamingError {
    fn from(e: StreamError) -> Self {
        StreamingError::Stream(e)
    }
}

impl From<EnumerationError> for StreamingError {
    fn from(e: EnumerationError) -> Self {
        StreamingError::Query(e)
    }
}

/// The standing query a [`StreamingEngine`] evaluates against every batch:
/// cycle kind, window size and constraints. Plain data, like
/// [`Query`](crate::Query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingQuery {
    kind: CycleKind,
    granularity: Granularity,
    sched: SchedStrategy,
    window_delta: Timestamp,
    max_len: Option<usize>,
    include_self_loops: bool,
    collect: CollectMode,
    predicate: CyclePredicate,
    shards: ShardSpec,
}

impl StreamingQuery {
    /// A window-constrained simple-cycle query: report cycles whose edge
    /// timestamps span at most `delta`, as they are closed by new batches.
    ///
    /// Defaults to [`Granularity::CoarseGrained`] parallelism — see
    /// [`StreamingQuery::granularity`] for when to pick fine-grained instead.
    pub fn simple(delta: Timestamp) -> Self {
        Self {
            kind: CycleKind::Simple,
            granularity: Granularity::CoarseGrained,
            sched: SchedStrategy::default(),
            window_delta: delta,
            max_len: None,
            include_self_loops: false,
            collect: CollectMode::Collect,
            predicate: CyclePredicate::pass_all(),
            shards: ShardSpec::single(),
        }
    }

    /// A temporal-cycle query (strictly increasing timestamps) with window
    /// size `delta`.
    pub fn temporal(delta: Timestamp) -> Self {
        Self {
            kind: CycleKind::Temporal,
            ..Self::simple(delta)
        }
    }

    /// Selects how each batch's delta enumeration is split across the
    /// engine's workers, mirroring [`Query::granularity`](crate::Query):
    ///
    /// * [`Granularity::Sequential`] — one thread sweeps the batch's roots.
    /// * [`Granularity::CoarseGrained`] (the default) — one dynamically
    ///   scheduled task per closing root: the cheapest dispatch, ideal when a
    ///   batch closes many small, independent searches.
    /// * [`Granularity::FineGrained`] — every recursion level of a rooted
    ///   search is a stealable task: pick this when batches are *skewed* (a
    ///   hub vertex closes most of a batch's cycles through few roots), where
    ///   the coarse driver collapses to a single worker.
    ///
    /// With a single-threaded engine every granularity runs sequentially; the
    /// per-batch [`RunStats`] record what effectively executed.
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Selects how idle workers engage the batch's fine-grained delta pass:
    /// work-[`Stealing`](SchedStrategy::Stealing) (the default — each branch
    /// is a boxed task on the pool's deques) or
    /// work-[`Assisting`](SchedStrategy::Assisting) (branches are claimed
    /// from per-level packed-atomic loops that idle workers join in place).
    ///
    /// Only consulted for [`Granularity::FineGrained`] on a multi-threaded
    /// engine; other granularities ignore it. Reported cycles are
    /// byte-identical either way — the strategy is a scheduling knob, which
    /// is also why it is **not** persisted in durable checkpoints: a replay
    /// under either strategy reconstructs the same state.
    pub fn sched(mut self, strategy: SchedStrategy) -> Self {
        self.sched = strategy;
        self
    }

    /// Constrains cycles to at most `len` edges (must be >= 1; validated when
    /// the engine is built). This is also the per-batch work cap: every
    /// driver — including the fine-grained one, which checks the bound before
    /// spawning a task — prunes extensions that can no longer close within
    /// `len` edges.
    pub fn max_len(mut self, len: usize) -> Self {
        self.max_len = Some(len);
        self
    }

    /// Also report length-1 cycles (self-loops). Only meaningful for
    /// simple-cycle queries: temporal cycles have strictly increasing
    /// timestamps, so a length-1 temporal cycle cannot exist and requesting
    /// the combination is rejected by [`StreamingQuery::validate`] (the seed
    /// API silently ignored the flag instead).
    pub fn include_self_loops(mut self, yes: bool) -> Self {
        self.include_self_loops = yes;
        self
    }

    /// Selects whether per-batch cycles are materialised
    /// ([`CollectMode::Collect`], the default — streaming callers usually
    /// want the alerts) or only counted ([`CollectMode::Count`]).
    pub fn collect(mut self, mode: CollectMode) -> Self {
        self.collect = mode;
        self
    }

    /// Constrains reported cycles to edges accepted by `predicate`: **every**
    /// edge of a reported cycle must pass the attribute check (amount
    /// interval, label filter). The predicate is *pushed down* into the
    /// enumeration — rejected edges never enter the per-root cycle union and
    /// never extend a path — so a selective predicate shrinks the searched
    /// subgraph, it does not just filter reports. Defaults to
    /// [`EdgePredicate::pass_all`] (no attribute constraint, no per-edge
    /// overhead).
    ///
    /// Shorthand for [`cycle_predicate`](Self::cycle_predicate) with a
    /// predicate whose only constraint is per-edge; it **replaces** the whole
    /// predicate, cycle-level constraints included.
    pub fn predicate(mut self, predicate: EdgePredicate) -> Self {
        self.predicate = predicate.into();
        self
    }

    /// Constrains reported cycles by a full [`CyclePredicate`]: per-edge
    /// attribute checks plus cycle-level constraints — a total-amount
    /// interval, strict amount monotonicity along the path, position-indexed
    /// edge predicates and a vertex allow/deny set. Like the per-edge check,
    /// every component that admits a sound partial test is pushed into the
    /// traversal itself (see [`crate::delta`]); constraints only decidable on
    /// the complete cycle (the total-amount floor, positions indexed from the
    /// closing edge) are re-checked exactly when a cycle closes. Replaces any
    /// previously set predicate.
    pub fn cycle_predicate(mut self, predicate: CyclePredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// The cycle kind this query asks about.
    pub fn kind(&self) -> CycleKind {
        self.kind
    }

    /// The requested parallelisation granularity (what actually executes per
    /// batch may degrade to sequential — see [`StreamingQuery::granularity`]).
    pub fn requested_granularity(&self) -> Granularity {
        self.granularity
    }

    /// The scheduling strategy fine-grained passes run under (see
    /// [`StreamingQuery::sched`]).
    pub fn sched_strategy(&self) -> SchedStrategy {
        self.sched
    }

    /// The enumeration window size δ.
    pub fn window_delta(&self) -> Timestamp {
        self.window_delta
    }

    /// The cycle-length bound, if any.
    pub fn max_len_bound(&self) -> Option<usize> {
        self.max_len
    }

    /// Whether length-1 cycles (self-loops) are reported.
    pub fn includes_self_loops(&self) -> bool {
        self.include_self_loops
    }

    /// Whether per-batch cycles are materialised or only counted.
    pub fn collect_mode(&self) -> CollectMode {
        self.collect
    }

    /// The edge predicate every reported cycle's edges must satisfy
    /// ([`EdgePredicate::pass_all`] unless [`StreamingQuery::predicate`] set
    /// one) — the per-edge component of
    /// [`extended_predicate`](Self::extended_predicate).
    pub fn edge_predicate(&self) -> &EdgePredicate {
        self.predicate.edge_predicate()
    }

    /// The full cycle predicate this query evaluates: the per-edge component
    /// of [`edge_predicate`](Self::edge_predicate) plus any cycle-level
    /// constraints set via [`cycle_predicate`](Self::cycle_predicate)
    /// ([`CyclePredicate::pass_all`] when none were).
    pub fn extended_predicate(&self) -> &CyclePredicate {
        &self.predicate
    }

    /// Partitions the engine's sliding-window ingest (and, for
    /// [`Granularity::Sequential`] queries on a multi-threaded engine, the
    /// per-batch delta pass) across `spec` shards — see
    /// [`ShardSpec`] and the sharding section of the [module docs](self).
    /// Purely a parallelism knob: reported cycles are byte-identical for
    /// every shard count. Defaults to [`ShardSpec::single`] (today's
    /// unsharded path, exactly).
    pub fn shards(mut self, spec: ShardSpec) -> Self {
        self.shards = spec;
        self
    }

    /// The shard layout this query asks its [`StreamingEngine`] to run with.
    pub fn shard_spec(&self) -> ShardSpec {
        self.shards
    }

    /// Checks the query for values that can never return anything and for
    /// combinations that have no implementation, mirroring
    /// [`Query::validate`](crate::Query::validate). Called when the
    /// [`StreamingEngine`] is built, so an engine never holds an invalid
    /// standing query.
    pub fn validate(&self) -> Result<(), EnumerationError> {
        if self.window_delta < 1 {
            return Err(EnumerationError::InvalidWindow {
                delta: self.window_delta,
            });
        }
        if self.max_len == Some(0) {
            return Err(EnumerationError::InvalidMaxLen);
        }
        if self.kind == CycleKind::Temporal && self.include_self_loops {
            // Strictly increasing timestamps leave no room for a length-1
            // cycle; refuse instead of silently dropping the flag.
            return Err(EnumerationError::SelfLoopsUnsupported);
        }
        if let Err(reason) = self.predicate.validate() {
            // An unsatisfiable predicate (empty amount interval, empty
            // allow-list, inverted total-amount bounds) rejects every cycle
            // and can never report anything.
            return Err(EnumerationError::InvalidPredicate { reason });
        }
        Ok(())
    }
}

/// A cycle reported by the streaming engine, resolved to concrete temporal
/// edges (dense ids are re-based when the sliding window compacts, so they
/// are not stable across batches — the edges themselves are).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamCycle {
    /// Vertices in traversal order (same convention as
    /// [`Cycle`]).
    pub vertices: Vec<VertexId>,
    /// The traversed edges: `edges[i]` connects `vertices[i]` to
    /// `vertices[i + 1]`, wrapping at the end.
    pub edges: Vec<TemporalEdge>,
}

impl StreamCycle {
    /// Number of edges (equivalently, vertices) in the cycle.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the cycle has no edges (never the case for cycles
    /// produced by the engine; paired with [`StreamCycle::len`]).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Rotates the cycle so that its lexicographically smallest
    /// `(ts, src, dst)` edge comes first. Two reports are the same cyclic
    /// edge sequence iff their canonical forms are equal — this is how the
    /// streaming-equivalence tests compare per-batch results (found under
    /// different edge ids) against one-shot results.
    pub fn canonicalize(&self) -> StreamCycle {
        let k = self.len();
        let key = |e: &TemporalEdge| (e.ts, e.src, e.dst);
        let min_pos = (0..k).min_by_key(|&i| key(&self.edges[i])).unwrap_or(0);
        StreamCycle {
            vertices: (0..k).map(|i| self.vertices[(min_pos + i) % k]).collect(),
            edges: (0..k).map(|i| self.edges[(min_pos + i) % k]).collect(),
        }
    }
}

/// Stable identifier of one standing query.
///
/// A [`MultiStreamingEngine`] assigns a fresh id to every
/// [`subscribe`](MultiStreamingEngine::subscribe) call and never reuses one —
/// not even after [`unsubscribe`](MultiStreamingEngine::unsubscribe) — so
/// multi-tenant callers can attribute per-batch results to the right consumer
/// for the whole lifetime of the stream. A single-query [`StreamingEngine`]
/// stamps its reports with [`QueryId::SOLO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// The id a single-query [`StreamingEngine`] stamps on its reports.
    /// [`MultiStreamingEngine`] subscription ids start above it.
    pub const SOLO: QueryId = QueryId(0);

    /// The raw id value (stable, monotonically assigned).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value, for durability layers re-hydrating
    /// a checkpointed subscription registry. The engine still enforces id
    /// discipline: [`MultiStreamingEngine::restore_subscription`] rejects ids
    /// that would break monotonicity, so a decoded id cannot collide with a
    /// live one.
    pub fn from_raw(raw: u64) -> Self {
        QueryId(raw)
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// What one [`StreamingEngine::ingest`] call produced.
#[derive(Debug)]
pub struct BatchReport {
    /// The standing query these results belong to: [`QueryId::SOLO`] from a
    /// [`StreamingEngine`], the subscription's id from a
    /// [`MultiStreamingEngine`] — so multi-tenant callers can attribute
    /// per-query cycle counts without re-sorting.
    pub query: QueryId,
    /// 0-based index of this batch in the stream.
    pub batch: u64,
    /// Edges appended by this batch.
    pub appended: usize,
    /// Edges that expired out of the window during this ingest.
    pub expired: usize,
    /// Edges inside the window after the ingest.
    pub live_edges: usize,
    /// The live window after the ingest.
    pub window: TimeWindow,
    /// Cycles closed by this batch (count; equals `cycles.len()` when the
    /// query materialises them).
    pub cycles_found: u64,
    /// The closed cycles, resolved to temporal edges (empty in
    /// [`CollectMode::Count`]).
    pub cycles: Vec<StreamCycle>,
    /// Wall-clock seconds spent appending + expiring.
    pub ingest_secs: f64,
    /// Wall-clock seconds spent in the delta enumeration.
    pub enumerate_secs: f64,
    /// Work statistics of the delta enumeration.
    pub stats: RunStats,
}

/// A long-lived incremental enumeration engine: owns the sliding-window graph
/// and one [`Engine`] (and therefore one reusable thread pool) and evaluates
/// its standing [`StreamingQuery`] against every ingested batch.
///
/// # Example
/// ```
/// use pce_core::streaming::{StreamingEngine, StreamingQuery};
/// use pce_core::graph::TemporalEdge;
///
/// let mut engine =
///     StreamingEngine::with_threads(1_000, StreamingQuery::temporal(100), 1).unwrap();
///
/// // The first two transfers open a path, the third closes the ring.
/// let quiet = engine
///     .ingest(&[TemporalEdge::new(0, 1, 10), TemporalEdge::new(1, 2, 20)])
///     .unwrap();
/// assert_eq!(quiet.cycles_found, 0);
///
/// let alert = engine.ingest(&[TemporalEdge::new(2, 0, 30)]).unwrap();
/// assert_eq!(alert.cycles_found, 1);
/// assert_eq!(alert.cycles[0].vertices.len(), 3);
/// ```
#[derive(Debug)]
pub struct StreamingEngine {
    engine: Engine,
    graph: SlidingWindowGraph,
    query: StreamingQuery,
    /// Reused across every delta run (epoch-stamped, grown as the vertex set
    /// grows) so ingests pay no per-batch allocation: one scratch for
    /// sequential runs, one per pool worker for parallel runs.
    scratches: Vec<RootScratch>,
    batches: u64,
    total_cycles: u64,
}

impl StreamingEngine {
    /// Creates a streaming engine sized to the machine. `retention` is the
    /// sliding-window span: edges expire once their timestamp drops below
    /// `watermark - retention`.
    pub fn new(retention: Timestamp, query: StreamingQuery) -> Result<Self, StreamingError> {
        Self::with_threads(retention, query, 0)
    }

    /// Creates a streaming engine with `threads` workers (0 = one per
    /// available core; 1 = strictly sequential delta queries, no pool).
    pub fn with_threads(
        retention: Timestamp,
        query: StreamingQuery,
        threads: usize,
    ) -> Result<Self, StreamingError> {
        query.validate()?;
        if query.window_delta > retention {
            return Err(StreamingError::RetentionTooSmall {
                delta: query.window_delta,
                retention,
            });
        }
        let shards = query.shards;
        Ok(Self {
            engine: Engine::with_threads(threads),
            graph: SlidingWindowGraph::with_shards(retention, shards),
            query,
            scratches: Vec::new(),
            batches: 0,
            total_cycles: 0,
        })
    }

    /// Ingests one batch of edges (non-decreasing timestamps across batches;
    /// any order within a batch) and returns the cycles it closed.
    ///
    /// A rejected batch ([`StreamingError::Stream`]) leaves the graph — and
    /// the stream — fully intact.
    pub fn ingest(&mut self, batch: &[TemporalEdge]) -> Result<BatchReport, StreamingError> {
        let t0 = Instant::now();
        let pool = (self.engine.threads() > 1 && !self.graph.shard_spec().is_single())
            .then(|| self.engine.pool().as_ref());
        let delta = self.graph.append_batch_on(batch, pool)?;
        let ingest_secs = t0.elapsed().as_secs_f64();

        // No floor: `window_delta <= retention` (enforced at construction)
        // guarantees that every edge a root's search can need — timestamps
        // in `[root_ts - δ : root_ts]` — is still physically stored when the
        // root arrives, because compaction only removes edges below the
        // *previous* batch's window start and `root_ts >= watermark` held at
        // append time. Reports are therefore independent of batch
        // boundaries: a cycle is announced exactly when its closing edge
        // arrives, no matter how the stream is chopped.
        let floor = Timestamp::MIN;
        let granularity = self.effective_granularity(delta.roots.len());
        // A Sequential-granularity query on a sharded, multi-threaded engine
        // runs the delta pass shard-parallel: each shard owns the roots whose
        // source vertex it stores, so the per-root sequential searches spread
        // across the pool without changing what is reported (see
        // `delta::run_delta_sharded`). Coarse/fine granularities already
        // decompose below shard level and ignore the shard layout here.
        let sharded = (self.query.granularity == Granularity::Sequential
            && self.engine.threads() > 1
            && !self.graph.shard_spec().is_single()
            && !delta.roots.is_empty())
        .then(|| self.graph.shard_spec());
        let want = if sharded.is_some() {
            self.engine.threads()
        } else if granularity == Granularity::Sequential {
            1
        } else {
            self.engine.threads()
        };
        if self.scratches.len() < want {
            self.scratches.resize_with(want, || RootScratch::new(0));
        }
        for scratch in &mut self.scratches {
            scratch.ensure_vertices(self.graph.num_vertices());
        }
        let t1 = Instant::now();
        let (cycles, stats) = match self.query.collect {
            CollectMode::Collect => {
                let sink = CollectingSink::new();
                let stats = run_delta(
                    &self.query,
                    &self.engine,
                    &self.graph,
                    &mut self.scratches,
                    &sink,
                    delta.roots.clone(),
                    floor,
                    granularity,
                    sharded,
                );
                let resolved = sink
                    .into_cycles()
                    .into_iter()
                    .map(|c| resolve_cycle(&self.graph, c))
                    .collect();
                (resolved, stats)
            }
            CollectMode::Count => {
                let sink = CountingSink::new();
                let stats = run_delta(
                    &self.query,
                    &self.engine,
                    &self.graph,
                    &mut self.scratches,
                    &sink,
                    delta.roots.clone(),
                    floor,
                    granularity,
                    sharded,
                );
                (Vec::new(), stats)
            }
        };
        let enumerate_secs = t1.elapsed().as_secs_f64();

        let report = BatchReport {
            query: QueryId::SOLO,
            batch: self.batches,
            appended: delta.appended,
            expired: delta.expired,
            live_edges: self.graph.live_edges().len(),
            window: delta.window,
            cycles_found: stats.cycles,
            cycles,
            ingest_secs,
            enumerate_secs,
            stats,
        };
        self.batches += 1;
        self.total_cycles += report.cycles_found;
        Ok(report)
    }

    /// The sliding-window graph (for inspection: window, watermark, live
    /// edges, ingest totals).
    pub fn graph(&self) -> &SlidingWindowGraph {
        &self.graph
    }

    /// The standing query.
    pub fn query(&self) -> &StreamingQuery {
        &self.query
    }

    /// The inner [`Engine`] (and its reusable pool), e.g. to issue one-shot
    /// queries against a [`StreamingEngine::snapshot`] on the same pool.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total cycles reported across all batches.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Materialises the current window as an immutable [`TemporalGraph`] —
    /// the reference for the one-shot side of the equivalence guarantee (see
    /// the [module docs](self)).
    pub fn snapshot(&self) -> TemporalGraph {
        self.graph.snapshot()
    }

    /// The granularity one batch's delta run effectively executes at: the
    /// query's requested granularity, degraded to sequential when there is
    /// nothing to parallelise over. Coarse-grained degrades on single-root
    /// batches (one task per root cannot occupy a second worker); the
    /// fine-grained driver splits *within* a root, so a single hot root is
    /// exactly where it must stay parallel.
    fn effective_granularity(&self, batch_roots: usize) -> Granularity {
        if self.engine.threads() <= 1 || batch_roots == 0 {
            return Granularity::Sequential;
        }
        match self.query.granularity {
            Granularity::CoarseGrained if batch_roots <= 1 => Granularity::Sequential,
            requested => requested,
        }
    }
}

/// Dispatches one delta run (free function so the engine can lend out its
/// graph immutably and its scratches mutably at the same time). Sequential
/// runs reuse `scratches[0]` — unless `sharded` is set, in which case the
/// per-root sequential searches are spread shard-parallel across the pool
/// (one task per shard, roots owned by their closing edge's source vertex).
/// Parallel runs — coarse (one task per root) or fine (stealable
/// recursion-level tasks) — hand each pool worker its own persistent
/// scratch. No allocation on the hot path either way.
#[allow(clippy::too_many_arguments)] // private dispatcher over engine fields
fn run_delta<S: crate::cycle::CycleSink>(
    query: &StreamingQuery,
    engine: &Engine,
    graph: &SlidingWindowGraph,
    scratches: &mut [RootScratch],
    sink: &S,
    roots: std::ops::Range<pce_graph::EdgeId>,
    floor: Timestamp,
    granularity: Granularity,
    sharded: Option<ShardSpec>,
) -> RunStats {
    let predicate = &query.predicate;
    match query.kind {
        CycleKind::Simple => {
            let opts = SimpleCycleOptions {
                window_delta: Some(query.window_delta),
                max_len: query.max_len,
                include_self_loops: query.include_self_loops,
            };
            match granularity {
                Granularity::Sequential => match sharded {
                    Some(spec) => delta_simple_sharded_with_scratch(
                        graph,
                        roots,
                        floor,
                        spec,
                        &opts,
                        predicate,
                        sink,
                        engine.pool(),
                        scratches,
                    ),
                    None => delta_simple_with_scratch(
                        graph,
                        roots,
                        floor,
                        &opts,
                        predicate,
                        sink,
                        &mut scratches[0],
                    ),
                },
                Granularity::CoarseGrained => delta_simple_parallel_with_scratch(
                    graph,
                    roots,
                    floor,
                    &opts,
                    predicate,
                    sink,
                    engine.pool(),
                    scratches,
                ),
                Granularity::FineGrained => match query.sched {
                    SchedStrategy::Stealing => delta_simple_fine_with_scratch(
                        graph,
                        roots,
                        floor,
                        &opts,
                        predicate,
                        sink,
                        engine.pool(),
                        scratches,
                    ),
                    SchedStrategy::Assisting => delta_simple_assist_with_scratch(
                        graph,
                        roots,
                        floor,
                        &opts,
                        predicate,
                        sink,
                        engine.pool(),
                        scratches,
                    ),
                },
            }
        }
        CycleKind::Temporal => {
            let opts = TemporalCycleOptions {
                window_delta: query.window_delta,
                max_len: query.max_len,
            };
            match granularity {
                Granularity::Sequential => match sharded {
                    Some(spec) => delta_temporal_sharded_with_scratch(
                        graph,
                        roots,
                        floor,
                        spec,
                        &opts,
                        predicate,
                        sink,
                        engine.pool(),
                        scratches,
                    ),
                    None => delta_temporal_with_scratch(
                        graph,
                        roots,
                        floor,
                        &opts,
                        predicate,
                        sink,
                        &mut scratches[0],
                    ),
                },
                Granularity::CoarseGrained => delta_temporal_parallel_with_scratch(
                    graph,
                    roots,
                    floor,
                    &opts,
                    predicate,
                    sink,
                    engine.pool(),
                    scratches,
                ),
                Granularity::FineGrained => match query.sched {
                    SchedStrategy::Stealing => delta_temporal_fine_with_scratch(
                        graph,
                        roots,
                        floor,
                        &opts,
                        predicate,
                        sink,
                        engine.pool(),
                        scratches,
                    ),
                    SchedStrategy::Assisting => delta_temporal_assist_with_scratch(
                        graph,
                        roots,
                        floor,
                        &opts,
                        predicate,
                        sink,
                        engine.pool(),
                        scratches,
                    ),
                },
            }
        }
    }
}

/// Resolves a raw cycle (dense edge ids) to concrete temporal edges against
/// the current window — dense ids are re-based when the window compacts, so
/// nothing id-based may outlive the batch that produced it.
fn resolve_cycle(graph: &SlidingWindowGraph, c: Cycle) -> StreamCycle {
    StreamCycle {
        edges: c
            .edges
            .iter()
            .map(|&id| GraphView::edge(graph, id))
            .collect(),
        vertices: c.vertices,
    }
}

/// One active subscription of a [`MultiStreamingEngine`].
#[derive(Debug)]
struct Subscription {
    id: QueryId,
    query: StreamingQuery,
    total_cycles: u64,
    latency: LatencyStats,
}

/// A point-in-time copy of one subscription's durable state: its id, its
/// standing query, and the lifetime total of cycles reported to it.
///
/// This is exactly what a checkpoint must capture to resurrect the
/// subscription after a restart —
/// [`MultiStreamingEngine::restore_subscription`] accepts the same three
/// fields. Latency percentiles are deliberately absent: they are
/// observability, not state, and restart fresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionSnapshot {
    /// The subscription's stable id.
    pub id: QueryId,
    /// The standing query, as subscribed.
    pub query: StreamingQuery,
    /// Lifetime total of cycles reported to this subscription.
    pub total_cycles: u64,
}

/// The parameters of the **one** shared enumeration pass a batch runs for all
/// subscriptions: the loosest constraint on every axis, so each query's
/// result set is a filterable subset of what the pass discovers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SharedPass {
    /// [`CycleKind::Simple`] as soon as any subscription asks for simple
    /// cycles (every temporal cycle is also a vertex-simple cycle rooted at
    /// the same maximum edge, so one simple pass serves both kinds);
    /// [`CycleKind::Temporal`] only for an all-temporal portfolio, where the
    /// strictly-increasing constraint prunes the search far harder.
    kind: CycleKind,
    /// The widest subscribed window: the per-root backward union/pruning pass
    /// runs once at this δ, and narrower queries filter by time span.
    delta: Timestamp,
    /// The loosest length bound (`None` as soon as any query is unbounded).
    max_len: Option<usize>,
    /// Whether any simple subscription wants self-loops reported.
    include_self_loops: bool,
    /// The [`CyclePredicate::union`] hull of every subscription's predicate —
    /// the weakest predicate implied by the whole portfolio. Pushing it into
    /// the shared pass is sound by the same argument as the other axes, in
    /// reverse: the hull *rejects* a cycle only when **every** subscription
    /// rejects it. Per-edge constraints union, total-amount bounds loosen to
    /// the widest interval, monotonicity survives only when every
    /// subscription demands it, positional constraints keep only positions
    /// every subscription constrains (as per-position unions), and vertex
    /// sets take the set-union — each axis individually the loosest member,
    /// so the hull admits a superset of every subscription's cycles. Exact
    /// per-subscription predicates are re-checked at fan-out (they may be
    /// strictly narrower than the hull).
    predicate: CyclePredicate,
}

impl SharedPass {
    /// Computes the loosest-constraint pass covering `subs`, or `None` when
    /// there is nothing subscribed (the batch is ingested but not enumerated).
    fn covering(subs: &[Subscription]) -> Option<SharedPass> {
        let first = subs.first()?;
        let mut pass = SharedPass {
            kind: CycleKind::Temporal,
            delta: first.query.window_delta,
            max_len: first.query.max_len,
            include_self_loops: false,
            predicate: first.query.predicate.clone(),
        };
        for sub in subs {
            let q = &sub.query;
            if q.kind == CycleKind::Simple {
                pass.kind = CycleKind::Simple;
                pass.include_self_loops |= q.include_self_loops;
            }
            pass.delta = pass.delta.max(q.window_delta);
            pass.max_len = match (pass.max_len, q.max_len) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
            pass.predicate = pass.predicate.union(&q.predicate);
        }
        Some(pass)
    }

    /// The pass as a standing query, for the shared [`run_delta`] dispatcher.
    /// The `shards` field is a placeholder: the multi engine's shard layout
    /// lives on the engine itself, and is handed to [`run_delta`] separately.
    fn as_query(&self, granularity: Granularity, sched: SchedStrategy) -> StreamingQuery {
        StreamingQuery {
            kind: self.kind,
            granularity,
            sched,
            window_delta: self.delta,
            max_len: self.max_len,
            include_self_loops: self.include_self_loops,
            collect: CollectMode::Collect,
            predicate: self.predicate.clone(),
            shards: ShardSpec::single(),
        }
    }
}

/// Selects how a [`MultiStreamingEngine`] routes each candidate cycle of the
/// shared enumeration pass to the subscriptions that accept it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FanOutStrategy {
    /// The reference dispatcher: every candidate is re-checked against every
    /// subscription — `O(candidates × subscriptions)`. Kept as the oracle the
    /// indexed strategy is differentially tested (and benchmarked) against.
    Naive,
    /// Constraint-indexed dispatch via a [`SubscriptionIndex`] (the default):
    /// subscriptions are bucketed into *cohorts* keyed by
    /// `(CycleKind, include_self_loops)` and, within a cohort, deduplicated
    /// into constraint *groups* ordered by `(delta, max_len)`, so a
    /// candidate's time-span binary-searches the acceptance frontier and each
    /// candidate only visits the groups that can possibly accept it. Large
    /// portfolios additionally run cohort dispatch as parallel tasks on the
    /// engine's thread pool.
    #[default]
    Indexed,
}

/// Default portfolio size from which the indexed strategy defers dispatch and
/// runs it as parallel `(cohort, candidate-chunk)` tasks on the engine's
/// pool. Below it, per-candidate inline dispatch is cheaper than buffering
/// candidates. Override per engine with
/// [`MultiStreamingEngine::with_parallel_fan_out_threshold`].
pub const PARALLEL_FAN_OUT_SUBS: usize = 64;

/// Candidates per parallel dispatch task: the copyable unit of fan-out work,
/// sized so a task amortises its scheduling cost but a skewed batch still
/// splits across workers.
const FAN_OUT_CHUNK: usize = 128;

/// The `max_len` stand-in for unbounded queries inside the index (every
/// candidate length compares `<=` against it).
const LEN_UNBOUNDED: usize = usize::MAX;

/// The cohort key of the [`SubscriptionIndex`]: subscriptions that share the
/// same *kind-level* acceptance semantics **and** the same predicate profile.
/// Within a cohort, acceptance of a candidate is monotone in the remaining
/// two constraints (window δ and `max_len`), which is what makes the
/// sorted-frontier dispatch sound; the predicate is part of the key rather
/// than the frontier because attribute acceptance is not ordered along any
/// single axis, but subscriptions sharing a profile — the common case for
/// templated alerting rules — pay its check **once per cohort** instead of
/// once per subscription.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CohortKey {
    /// Cycle kind every subscription in the cohort asks for.
    pub kind: CycleKind,
    /// Whether the cohort's subscriptions report length-1 cycles.
    pub include_self_loops: bool,
    /// The exact cycle predicate every subscription in the cohort evaluates
    /// (pass-all for unfiltered subscriptions) — per-edge constraints plus
    /// any aggregate, positional and vertex-set constraints. Because cohort
    /// members share it exactly, the cohort-level check *is* the
    /// per-subscription check.
    pub predicate: CyclePredicate,
}

impl CohortKey {
    fn of(query: &StreamingQuery) -> Self {
        Self {
            kind: query.kind,
            include_self_loops: query.include_self_loops,
            predicate: query.predicate.clone(),
        }
    }

    /// The kind-level half of [`admits`](Self::admits): whether a candidate
    /// of this shape passes the cohort's structural gate (cycle kind,
    /// self-loop policy, strictness), before any attribute predicate runs.
    fn admits_structure(&self, shape: &CandidateShape) -> bool {
        if shape.len == 1 {
            // Temporal queries never report self-loops (strictly increasing
            // timestamps leave no room for one) and simple queries only when
            // asked — both exactly as the naive per-subscription checks.
            if !(self.kind == CycleKind::Simple && self.include_self_loops) {
                return false;
            }
        } else if self.kind == CycleKind::Temporal && !shape.strict {
            return false;
        }
        true
    }

    /// Whether a candidate of this shape can be accepted by *any* member of
    /// the cohort — the kind-level and predicate gate the per-subscription
    /// loop of the naive dispatcher evaluates per subscription, evaluated
    /// once per cohort here. (Because cohort members share their predicate
    /// exactly, the cohort-level predicate check *is* the exact
    /// per-subscription predicate check, paid once per cohort.) The
    /// dispatcher itself runs the two halves separately so it can count the
    /// predicate evaluation; this combined form is the differential-test
    /// oracle.
    #[cfg(test)]
    fn admits(&self, shape: &CandidateShape, vertices: &[VertexId]) -> bool {
        self.admits_structure(shape)
            && predicate_accepts_candidate(&self.predicate, shape, vertices)
    }
}

impl std::fmt::Display for CohortKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            CycleKind::Simple => "simple",
            CycleKind::Temporal => "temporal",
        };
        if self.include_self_loops {
            write!(f, "{kind}+self-loops")?;
        } else {
            write!(f, "{kind}")?;
        }
        if !self.predicate.is_pass_all() {
            write!(f, " [{}]", self.predicate)?;
        }
        Ok(())
    }
}

/// One subscription's slot inside a constraint group.
#[derive(Debug, Clone)]
struct GroupMember {
    id: QueryId,
    /// Whether this member materialises cycles ([`CollectMode::Collect`]).
    collect: bool,
}

/// One *distinct* constraint profile `(delta, max_len)` within a cohort,
/// carrying every subscription that shares it. Dispatch work scales with the
/// number of groups, not the number of subscriptions: a candidate accepted by
/// a group is counted (and, if any member collects, stored) **once**, and
/// members receive the group's result at report time.
#[derive(Debug, Clone)]
struct ConstraintGroup {
    delta: Timestamp,
    /// [`LEN_UNBOUNDED`] when the profile has no length bound.
    max_len: usize,
    /// Cached `members.iter().any(|m| m.collect)`, kept in sync by the
    /// index's insert/remove paths (checked on the per-candidate hot path).
    collects: bool,
    members: Vec<GroupMember>,
}

impl ConstraintGroup {
    fn refresh_collects(&mut self) {
        self.collects = self.members.iter().any(|m| m.collect);
    }
}

/// One cohort of the index: the constraint groups sharing a [`CohortKey`],
/// sorted by `(delta, max_len)` so a candidate's time-span binary-searches
/// the acceptance frontier.
#[derive(Debug, Clone)]
struct Cohort {
    key: CohortKey,
    /// Sorted ascending by `(delta, max_len)`; a candidate with span `s` can
    /// only be accepted by the suffix starting at the first group with
    /// `delta >= s`.
    groups: Vec<ConstraintGroup>,
    /// `suffix_max_len[i] = max(groups[i..].max_len)` — lets dispatch skip a
    /// whole suffix when no remaining group can accept the candidate's
    /// length.
    suffix_max_len: Vec<usize>,
}

impl Cohort {
    fn rebuild_suffix(&mut self) {
        self.suffix_max_len.clear();
        self.suffix_max_len.resize(self.groups.len(), 0);
        let mut max = 0usize;
        for i in (0..self.groups.len()).rev() {
            max = max.max(self.groups[i].max_len);
            self.suffix_max_len[i] = max;
        }
    }

    fn subscriptions(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }
}

/// The constraint index behind [`FanOutStrategy::Indexed`]: buckets a
/// [`MultiStreamingEngine`]'s subscriptions into [`CohortKey`] cohorts and
/// deduplicates them into `(delta, max_len)` constraint groups, so each
/// candidate cycle of the shared pass is dispatched only to the groups that
/// can possibly accept it:
///
/// 1. the cohort gate (kind, strict timestamp increase, self-loops) runs
///    **once per cohort** instead of once per subscription;
/// 2. the candidate's time-span **binary-searches** the cohort's
///    `(delta, max_len)`-sorted groups for the acceptance frontier — groups
///    with a narrower window are never visited;
/// 3. a precomputed suffix maximum of `max_len` skips the whole remainder
///    when no surviving group can accept the candidate's length;
/// 4. subscriptions sharing a constraint profile cost **one** check (and one
///    stored cycle) per candidate, not one each — the index's work scales
///    with *distinct profiles*, not subscribers.
///
/// The index is maintained incrementally by
/// [`subscribe`](MultiStreamingEngine::subscribe) /
/// [`unsubscribe`](MultiStreamingEngine::unsubscribe) — `O(cohort)` per
/// update, never rebuilt per batch.
#[derive(Debug, Clone, Default)]
pub struct SubscriptionIndex {
    cohorts: Vec<Cohort>,
}

impl SubscriptionIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cohorts (distinct `(kind, include_self_loops)` keys).
    pub fn num_cohorts(&self) -> usize {
        self.cohorts.len()
    }

    /// Number of constraint groups (distinct full constraint profiles)
    /// across all cohorts. Dispatch work per candidate is bounded by this,
    /// not by [`SubscriptionIndex::num_subscriptions`].
    pub fn num_groups(&self) -> usize {
        self.cohorts.iter().map(|c| c.groups.len()).sum()
    }

    /// Number of indexed subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.cohorts.iter().map(Cohort::subscriptions).sum()
    }

    /// Per-cohort summary rows `(key, groups, subscriptions)`, in index
    /// order — the shape a capacity dashboard wants.
    pub fn summaries(&self) -> Vec<(CohortKey, usize, usize)> {
        self.cohorts
            .iter()
            .map(|c| (c.key.clone(), c.groups.len(), c.subscriptions()))
            .collect()
    }

    fn insert(&mut self, id: QueryId, query: &StreamingQuery) {
        let key = CohortKey::of(query);
        let max_len = query.max_len.unwrap_or(LEN_UNBOUNDED);
        let cohort = match self.cohorts.iter().position(|c| c.key == key) {
            Some(i) => &mut self.cohorts[i],
            None => {
                self.cohorts.push(Cohort {
                    key,
                    groups: Vec::new(),
                    suffix_max_len: Vec::new(),
                });
                self.cohorts.last_mut().expect("just pushed")
            }
        };
        let member = GroupMember {
            id,
            collect: query.collect == CollectMode::Collect,
        };
        match cohort
            .groups
            .binary_search_by_key(&(query.window_delta, max_len), |g| (g.delta, g.max_len))
        {
            Ok(pos) => {
                cohort.groups[pos].members.push(member);
                cohort.groups[pos].refresh_collects();
            }
            Err(pos) => {
                let collects = member.collect;
                cohort.groups.insert(
                    pos,
                    ConstraintGroup {
                        delta: query.window_delta,
                        max_len,
                        collects,
                        members: vec![member],
                    },
                );
            }
        }
        cohort.rebuild_suffix();
    }

    fn remove(&mut self, id: QueryId) -> bool {
        for ci in 0..self.cohorts.len() {
            let cohort = &mut self.cohorts[ci];
            for gi in 0..cohort.groups.len() {
                if let Some(mi) = cohort.groups[gi].members.iter().position(|m| m.id == id) {
                    cohort.groups[gi].members.remove(mi);
                    if cohort.groups[gi].members.is_empty() {
                        cohort.groups.remove(gi);
                    } else {
                        cohort.groups[gi].refresh_collects();
                    }
                    cohort.rebuild_suffix();
                    if cohort.groups.is_empty() {
                        self.cohorts.remove(ci);
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Fresh per-batch group accumulators, parallel to `cohorts[*].groups`.
    fn make_accums(&self) -> Vec<Vec<GroupAccum>> {
        self.cohorts
            .iter()
            .map(|c| c.groups.iter().map(|_| GroupAccum::new()).collect())
            .collect()
    }

    /// Fresh per-batch cohort counters, parallel to `cohorts`.
    fn make_counters(&self) -> Vec<CohortCounters> {
        self.cohorts.iter().map(|_| CohortCounters::new()).collect()
    }
}

/// Per-batch, per-group accumulator of the indexed fan-out: one atomic count
/// and (only if some member collects) the accepted cycles, stored **once per
/// group** no matter how many subscriptions share the profile.
#[derive(Debug)]
struct GroupAccum {
    count: AtomicU64,
    cycles: Mutex<Vec<Cycle>>,
}

impl GroupAccum {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            cycles: Mutex::new(Vec::new()),
        }
    }
}

/// Per-batch, per-cohort dispatch accounting (threaded into
/// [`CohortBatchStats`] and the engine's per-cohort [`LatencyStats`]).
#[derive(Debug)]
struct CohortCounters {
    /// Candidates that passed the cohort gate (kind/strictness/self-loops).
    offered: AtomicU64,
    /// Constraint groups examined past the binary-searched frontier.
    checks: AtomicU64,
    /// Subscription-level acceptances (each accepted group counts once per
    /// member — the deliveries the naive loop would have performed).
    accepted: AtomicU64,
    /// Busy nanoseconds of this cohort's parallel dispatch tasks (0 when
    /// dispatch ran inline inside the shared pass).
    busy_nanos: AtomicU64,
}

impl CohortCounters {
    fn new() -> Self {
        Self {
            offered: AtomicU64::new(0),
            checks: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }
}

/// The per-candidate summary every dispatcher needs, computed once per
/// candidate: the structural shape (time-span, length, strictness) plus the
/// attribute shape ([`EdgePredicate::accepts_shape`] re-checks exact
/// per-subscription predicates against it without re-walking the edges).
#[derive(Debug)]
struct CandidateShape {
    /// Root timestamp minus minimum timestamp (the delta searches report
    /// path edges in traversal order with the root, maximum, edge last).
    span: Timestamp,
    /// Number of edges.
    len: usize,
    /// Whether timestamps strictly increase in traversal order.
    strict: bool,
    /// The smallest edge amount in the candidate.
    min_amount: Amount,
    /// The largest edge amount in the candidate.
    max_amount: Amount,
    /// The distinct edge labels, sorted (cycles are short, so this stays
    /// tiny; dedup keeps repeated-label rings to one filter probe each).
    labels: Vec<Label>,
    /// The resolved edges in reported order (path edges in traversal order,
    /// the root — maximum — edge last): exactly the order
    /// [`CyclePredicate::accepts_cycle`] is defined over, so predicates with
    /// cycle-level constraints re-check candidates without another id
    /// resolution pass.
    edge_attrs: Vec<TemporalEdge>,
}

/// Derives the [`CandidateShape`] of one candidate cycle.
fn candidate_shape(graph: &SlidingWindowGraph, edges: &[EdgeId]) -> CandidateShape {
    let root_ts = GraphView::edge(graph, *edges.last().expect("cycles have edges")).ts;
    let mut min_ts = root_ts;
    let mut strict = true;
    let mut prev: Option<Timestamp> = None;
    let mut min_amount = Amount::MAX;
    let mut max_amount = Amount::MIN;
    let mut labels: Vec<Label> = Vec::with_capacity(edges.len());
    let mut edge_attrs: Vec<TemporalEdge> = Vec::with_capacity(edges.len());
    for &e in edges {
        let edge = GraphView::edge(graph, e);
        min_ts = min_ts.min(edge.ts);
        if let Some(p) = prev {
            strict &= p < edge.ts;
        }
        prev = Some(edge.ts);
        min_amount = min_amount.min(edge.amount);
        max_amount = max_amount.max(edge.amount);
        labels.push(edge.label);
        edge_attrs.push(edge);
    }
    labels.sort_unstable();
    labels.dedup();
    CandidateShape {
        span: root_ts.saturating_sub(min_ts),
        len: edges.len(),
        strict,
        min_amount,
        max_amount,
        labels,
        edge_attrs,
    }
}

/// The exact predicate evaluation every dispatcher shares. A pure per-edge
/// predicate is decided from the precomputed attribute shape (amount hull and
/// deduplicated labels — no per-edge walk); a predicate carrying cycle-level
/// constraints (total-amount interval, monotonicity, positional constraints)
/// or a vertex filter re-checks the resolved edge sequence and vertex list
/// exactly. Candidates arrive in reported order with the maximum edge last —
/// the order [`CyclePredicate::accepts_cycle`] is defined over.
fn predicate_accepts_candidate(
    predicate: &CyclePredicate,
    shape: &CandidateShape,
    vertices: &[VertexId],
) -> bool {
    if predicate.has_cycle_constraints() || *predicate.vertex_filter() != VertexFilter::Any {
        predicate.accepts_cycle(&shape.edge_attrs, vertices)
    } else {
        predicate
            .edge_predicate()
            .accepts_shape(shape.min_amount, shape.max_amount, &shape.labels)
    }
}

/// Dispatches one candidate into one cohort: gate once (kind, strictness,
/// self-loops, the cohort's exact predicate), binary-search the
/// `(delta, max_len)` frontier, then visit only the surviving groups. The
/// shared helper of the inline sink and the parallel dispatch tasks.
#[inline]
fn dispatch_into_cohort(
    cohort: &Cohort,
    accums: &[GroupAccum],
    counters: &CohortCounters,
    shape: &CandidateShape,
    vertices: &[VertexId],
    edges: &[EdgeId],
) {
    if !cohort.key.admits_structure(shape) {
        return;
    }
    // The cohort-level predicate evaluation is a real constraint check the
    // dispatcher pays per structurally-admissible candidate (once per
    // cohort, since members share the predicate exactly) — count it, except
    // for pass-all cohorts where there is nothing to evaluate.
    if !cohort.key.predicate.is_pass_all() {
        counters.checks.fetch_add(1, Ordering::Relaxed);
        if !predicate_accepts_candidate(&cohort.key.predicate, shape, vertices) {
            return;
        }
    }
    counters.offered.fetch_add(1, Ordering::Relaxed);
    // Acceptance on the window axis is monotone: exactly the groups with
    // `delta >= span` remain, and they form the sorted suffix starting here.
    let start = cohort.groups.partition_point(|g| g.delta < shape.span);
    if start == cohort.groups.len() || cohort.suffix_max_len[start] < shape.len {
        return;
    }
    let mut checks = 0u64;
    for (offset, group) in cohort.groups[start..].iter().enumerate() {
        checks += 1;
        if group.max_len < shape.len {
            continue;
        }
        let accum = &accums[start + offset];
        accum.count.fetch_add(1, Ordering::Relaxed);
        counters
            .accepted
            .fetch_add(group.members.len() as u64, Ordering::Relaxed);
        if group.collects {
            accum
                .cycles
                .lock()
                .push(Cycle::new(vertices.to_vec(), edges.to_vec()));
        }
    }
    counters.checks.fetch_add(checks, Ordering::Relaxed);
}

/// Per-subscription accumulator of one batch's naive fan-out (see
/// [`FanOutSink`]).
#[derive(Debug, Default)]
struct SubAccum {
    count: AtomicU64,
    cycles: Mutex<Vec<Cycle>>,
}

/// The naive fan-out sink of the shared enumeration pass: every candidate
/// cycle the pass discovers is re-checked against each subscription's own
/// constraints — narrower window δ (time span), `max_len`, cycle kind
/// (strictly increasing timestamps for temporal queries), self-loops — and
/// accepted into the per-query accumulators it satisfies. Workers push
/// concurrently, so counts are atomic and collected cycles go through a
/// mutex, exactly like [`CollectingSink`]. This is the
/// [`FanOutStrategy::Naive`] reference the [`SubscriptionIndex`] dispatcher
/// is differentially tested against.
struct FanOutSink<'a> {
    graph: &'a SlidingWindowGraph,
    subs: &'a [Subscription],
    accums: Vec<SubAccum>,
    /// Candidate cycles the shared pass discovered (before per-query
    /// filtering) — what [`CycleSink::count`] reports, and therefore what the
    /// shared [`RunStats::cycles`] means for a multi-query batch.
    candidates: AtomicU64,
    /// Subscription constraint checks performed (`subscriptions` per
    /// candidate — the linear cost the index avoids).
    checks: AtomicU64,
}

impl<'a> FanOutSink<'a> {
    fn new(graph: &'a SlidingWindowGraph, subs: &'a [Subscription]) -> Self {
        Self {
            graph,
            subs,
            accums: subs.iter().map(|_| SubAccum::default()).collect(),
            candidates: AtomicU64::new(0),
            checks: AtomicU64::new(0),
        }
    }
}

impl CycleSink for FanOutSink<'_> {
    fn push(&self, vertices: &[VertexId], edges: &[EdgeId]) -> ControlFlow<()> {
        self.candidates.fetch_add(1, Ordering::Relaxed);
        self.checks
            .fetch_add(self.subs.len() as u64, Ordering::Relaxed);
        let shape = candidate_shape(self.graph, edges);
        for (sub, accum) in self.subs.iter().zip(&self.accums) {
            let q = &sub.query;
            if shape.len == 1 && !(q.kind == CycleKind::Simple && q.include_self_loops) {
                continue;
            }
            if q.kind == CycleKind::Temporal && !shape.strict {
                continue;
            }
            if shape.span > q.window_delta {
                continue;
            }
            if let Some(m) = q.max_len {
                if shape.len > m {
                    continue;
                }
            }
            // The exact per-subscription predicate (per-edge, aggregate,
            // positional and vertex constraints): the shared pass only
            // enforced the portfolio hull, which may be strictly weaker.
            if !predicate_accepts_candidate(&q.predicate, &shape, vertices) {
                continue;
            }
            accum.count.fetch_add(1, Ordering::Relaxed);
            if q.collect == CollectMode::Collect {
                accum
                    .cycles
                    .lock()
                    .push(Cycle::new(vertices.to_vec(), edges.to_vec()));
            }
        }
        ControlFlow::Continue(())
    }

    fn count(&self) -> u64 {
        self.candidates.load(Ordering::Relaxed)
    }
}

/// The inline indexed fan-out sink: dispatches each candidate through the
/// [`SubscriptionIndex`] as it is discovered, inside the shared pass itself
/// (the pass's workers already push concurrently, so dispatch parallelises
/// with the search). Used below the [`PARALLEL_FAN_OUT_SUBS`] threshold.
struct IndexedFanOutSink<'a> {
    graph: &'a SlidingWindowGraph,
    index: &'a SubscriptionIndex,
    accums: &'a [Vec<GroupAccum>],
    counters: &'a [CohortCounters],
    candidates: AtomicU64,
}

impl CycleSink for IndexedFanOutSink<'_> {
    fn push(&self, vertices: &[VertexId], edges: &[EdgeId]) -> ControlFlow<()> {
        self.candidates.fetch_add(1, Ordering::Relaxed);
        let shape = candidate_shape(self.graph, edges);
        for (ci, cohort) in self.index.cohorts.iter().enumerate() {
            dispatch_into_cohort(
                cohort,
                &self.accums[ci],
                &self.counters[ci],
                &shape,
                vertices,
                edges,
            );
        }
        ControlFlow::Continue(())
    }

    fn count(&self) -> u64 {
        self.candidates.load(Ordering::Relaxed)
    }
}

/// One buffered candidate of the deferred (parallel) dispatch path: the
/// resolved shape plus the raw cycle, captured during the shared pass and
/// fanned out afterwards by `(cohort, chunk)` tasks.
#[derive(Debug)]
struct BufferedCandidate {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
    shape: CandidateShape,
}

/// Returns a stable per-thread shard index in `0..n`: each thread that ever
/// calls this is assigned the next slot of a process-wide counter once, so
/// the shared pass's workers land on distinct shards (modulo `n`) without
/// the sink needing a worker id in the [`CycleSink`] signature.
fn thread_shard(n: usize) -> usize {
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static THREAD_SLOT: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    THREAD_SLOT.with(|slot| (*slot % n.max(1) as u64) as usize)
}

/// The buffering sink of the deferred dispatch path: the shared pass only
/// records each candidate's shape; dispatch happens afterwards, in parallel,
/// over the whole candidate set (see [`dispatch_deferred`]). The buffer is
/// sharded per pushing thread (cache-line padded, like the per-worker
/// [`WorkMetrics`](crate::WorkMetrics) blocks) so the pass's workers do not
/// serialize on one mutex on exactly the multi-threaded path this sink is
/// chosen for.
struct BufferingFanOutSink<'a> {
    graph: &'a SlidingWindowGraph,
    shards: Vec<CachePadded<Mutex<Vec<BufferedCandidate>>>>,
}

impl<'a> BufferingFanOutSink<'a> {
    fn new(graph: &'a SlidingWindowGraph, threads: usize) -> Self {
        Self {
            graph,
            shards: (0..threads.max(1))
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Drains every shard into one candidate list (order is arbitrary, like
    /// any concurrent sink's; dispatch is order-independent).
    fn into_candidates(self) -> Vec<BufferedCandidate> {
        let mut all = Vec::with_capacity(
            self.shards
                .iter()
                .map(|shard| shard.lock().len())
                .sum::<usize>(),
        );
        for shard in self.shards {
            all.append(&mut CachePadded::into_inner(shard).into_inner());
        }
        all
    }
}

impl CycleSink for BufferingFanOutSink<'_> {
    fn push(&self, vertices: &[VertexId], edges: &[EdgeId]) -> ControlFlow<()> {
        let shape = candidate_shape(self.graph, edges);
        self.shards[thread_shard(self.shards.len())]
            .lock()
            .push(BufferedCandidate {
                vertices: vertices.to_vec(),
                edges: edges.to_vec(),
                shape,
            });
        ControlFlow::Continue(())
    }

    fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.lock().len() as u64)
            .sum()
    }
}

/// Runs the deferred fan-out as parallel tasks on the engine's pool: one
/// dynamically-scheduled task per `(cohort, candidate chunk)` pair — the same
/// fine-grained copyable-unit discipline the delta drivers use, applied to
/// dispatch. Tasks of one cohort share that cohort's group accumulators
/// (atomic counts, mutex-guarded cycle lists), and each task adds its busy
/// time to its cohort's counters so per-cohort dispatch cost stays visible.
///
/// Under [`SchedStrategy::Assisting`] the same task grid is claimed from one
/// [`pce_sched::WorkAssistingLoop`] instead of a [`pce_sched::DynamicCounter`]
/// behind scope tasks, and the returned stats carry the loop's join/assist
/// counts (always zero for the stealing dispatcher).
fn dispatch_deferred(
    pool: &pce_sched::ThreadPool,
    sched: SchedStrategy,
    index: &SubscriptionIndex,
    candidates: &[BufferedCandidate],
    accums: &[Vec<GroupAccum>],
    counters: &[CohortCounters],
) -> pce_sched::AssistingForStats {
    let chunks = candidates.len().div_ceil(FAN_OUT_CHUNK);
    let cohorts = index.cohorts.len();
    if chunks == 0 || cohorts == 0 {
        return pce_sched::AssistingForStats::default();
    }
    let body = |_worker: usize, task: usize| {
        let ci = task / chunks;
        let chunk_idx = task % chunks;
        let start = chunk_idx * FAN_OUT_CHUNK;
        let end = (start + FAN_OUT_CHUNK).min(candidates.len());
        let t0 = Instant::now();
        let cohort = &index.cohorts[ci];
        for cand in &candidates[start..end] {
            dispatch_into_cohort(
                cohort,
                &accums[ci],
                &counters[ci],
                &cand.shape,
                &cand.vertices,
                &cand.edges,
            );
        }
        counters[ci]
            .busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    };
    match sched {
        SchedStrategy::Stealing => {
            pce_sched::parallel_for_dynamic(pool, chunks * cohorts, 1, body);
            pce_sched::AssistingForStats::default()
        }
        SchedStrategy::Assisting => pce_sched::work_assisting_for(pool, chunks * cohorts, 1, body),
    }
}

/// Per-cohort accounting of one batch's fan-out (indexed strategy only — the
/// naive loop has no cohorts to attribute to).
#[derive(Debug, Clone)]
pub struct CohortBatchStats {
    /// The cohort's key.
    pub key: CohortKey,
    /// Subscriptions in the cohort when the batch ran.
    pub subscriptions: usize,
    /// Distinct constraint groups in the cohort.
    pub groups: usize,
    /// Candidates that passed the cohort's kind-level gate.
    pub offered: u64,
    /// Constraint groups examined past the binary-searched window frontier.
    pub checks: u64,
    /// Subscription-level acceptances (one per member of each accepted
    /// group — the deliveries the naive loop performs individually).
    pub accepted: u64,
    /// Summed busy seconds of this cohort's parallel dispatch *tasks* (CPU
    /// time, not wall clock — across cohorts it can exceed the phase's
    /// [`FanOutReport::fan_out_secs`] on a multi-worker batch; 0 when the
    /// batch dispatched inline inside the shared pass).
    pub busy_secs: f64,
}

/// How one batch's fan-out executed, and what it cost (see
/// [`MultiBatchReport::fan_out`]).
#[derive(Debug, Clone)]
pub struct FanOutReport {
    /// The strategy that dispatched this batch.
    pub strategy: FanOutStrategy,
    /// Whether dispatch ran as deferred parallel `(cohort, chunk)` tasks on
    /// the pool (large portfolios) instead of inline inside the shared pass.
    pub parallel: bool,
    /// Subscription-constraint checks performed: `subscriptions × candidates`
    /// for the naive loop; cohort-level predicate evaluations (for cohorts
    /// that constrain attributes) plus examined constraint *groups* for the
    /// index. The deterministic cost measure `streaming_bench`'s `fan_out`
    /// and `predicate` sections compare across strategies and pushdown
    /// settings.
    pub checks: u64,
    /// Wall-clock seconds of the deferred dispatch phase (0 when dispatch
    /// ran inline; inline dispatch is part of
    /// [`MultiBatchReport::enumerate_secs`] either way).
    pub fan_out_secs: f64,
    /// Workers that joined the deferred dispatch's work-assisting loop
    /// (nonzero only when the engine runs [`SchedStrategy::Assisting`] and
    /// the batch dispatched deferred; the stealing dispatcher reports 0).
    pub joins: u64,
    /// Joins that engaged an already-active loop — the assisting analogue of
    /// a steal (subset of [`FanOutReport::joins`]).
    pub assists: u64,
    /// Per-cohort accounting rows (empty for the naive strategy).
    pub cohorts: Vec<CohortBatchStats>,
}

impl FanOutReport {
    fn empty(strategy: FanOutStrategy) -> Self {
        Self {
            strategy,
            parallel: false,
            checks: 0,
            fan_out_secs: 0.0,
            joins: 0,
            assists: 0,
            cohorts: Vec::new(),
        }
    }
}

/// What one [`MultiStreamingEngine::ingest`] call produced: the **shared**
/// ingest/enumeration measurements (paid once, no matter how many queries are
/// subscribed) plus one per-subscription [`BatchReport`] attributing cycles
/// to each [`QueryId`].
#[derive(Debug)]
pub struct MultiBatchReport {
    /// 0-based index of this batch in the stream.
    pub batch: u64,
    /// Edges appended by this batch.
    pub appended: usize,
    /// Edges that expired out of the window during this ingest.
    pub expired: usize,
    /// Edges inside the window after the ingest.
    pub live_edges: usize,
    /// The live window after the ingest.
    pub window: TimeWindow,
    /// Wall-clock seconds of the one shared append/expiry pass.
    pub ingest_secs: f64,
    /// Wall-clock seconds of the one shared delta enumeration + fan-out.
    pub enumerate_secs: f64,
    /// Candidate cycles the shared pass discovered before per-query
    /// filtering (each candidate is checked against every subscription).
    pub candidates: u64,
    /// Work statistics of the shared pass. `stats.cycles` counts the
    /// candidates, not any single query's results.
    pub stats: RunStats,
    /// How the batch's fan-out executed and what it cost: strategy, checks,
    /// parallel-dispatch engagement and per-cohort accounting.
    pub fan_out: FanOutReport,
    /// One report per active subscription, in subscription order. Each
    /// carries its [`BatchReport::query`] id, its own `cycles_found` /
    /// `cycles`, and the shared ingest/window figures.
    pub reports: Vec<BatchReport>,
}

impl MultiBatchReport {
    /// The per-query report for `id`, if that query is subscribed.
    pub fn report(&self, id: QueryId) -> Option<&BatchReport> {
        self.reports.iter().find(|r| r.query == id)
    }

    /// Total cycles reported across all subscriptions this batch (a cycle
    /// matched by several queries counts once per query).
    pub fn total_cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.cycles_found).sum()
    }
}

/// A multi-query streaming engine: **one** ingest pass serving many
/// concurrent cycle subscriptions over the same edge stream.
///
/// Where N independent [`StreamingEngine`]s over the same stream pay N
/// append/expiry passes, N delta root scans and N per-root backward
/// union/pruning passes per batch, a `MultiStreamingEngine` pays each of
/// those **once**:
///
/// 1. one [`SlidingWindowGraph`] append + expiry per batch;
/// 2. one delta root scan (the batch's id range);
/// 3. one backward union/pruning pass per root, at the **widest** subscribed
///    window (and loosest length/kind constraints — see the cost model below);
/// 4. one shared search per root, whose candidate cycles are re-checked
///    against each subscription (narrower δ as a time-span test, `max_len`,
///    temporal strictness, self-loops) and fanned out to per-query results.
///
/// The per-query results are **byte-identical** (after canonicalisation) to
/// what each query's own dedicated [`StreamingEngine`] would have reported —
/// the differential harness in `tests/streaming.rs` proves this across
/// granularities, thread counts and batch sizes.
///
/// # Cost model
///
/// The shared pass runs at the *union* of the subscribed constraints: the
/// maximum window δ, the loosest `max_len` (unbounded as soon as one query is
/// unbounded), and the simple-cycle search as soon as one query asks for
/// simple cycles (temporal-only portfolios keep the far stronger temporal
/// pruning). Adding a subscription whose constraints are inside the current
/// union is therefore almost free — one extra per-candidate check — while a
/// single much-looser query widens the shared search for everyone. Portfolios
/// of similar windows are the sweet spot; `streaming_bench`'s `multi_query`
/// section measures the sublinear scaling.
///
/// # Example
/// ```
/// use pce_core::streaming::{MultiStreamingEngine, StreamingQuery};
/// use pce_core::graph::TemporalEdge;
///
/// let mut engine = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
/// let fast = engine.subscribe(StreamingQuery::temporal(15)).unwrap();
/// let slow = engine.subscribe(StreamingQuery::temporal(500)).unwrap();
///
/// engine
///     .ingest(&[TemporalEdge::new(0, 1, 10), TemporalEdge::new(1, 2, 20)])
///     .unwrap();
/// let report = engine.ingest(&[TemporalEdge::new(2, 0, 30)]).unwrap();
/// // The ring spans 20 ticks: inside `slow`'s window, outside `fast`'s.
/// assert_eq!(report.report(fast).unwrap().cycles_found, 0);
/// assert_eq!(report.report(slow).unwrap().cycles_found, 1);
/// ```
#[derive(Debug)]
pub struct MultiStreamingEngine {
    engine: Engine,
    graph: SlidingWindowGraph,
    retention: Timestamp,
    granularity: Granularity,
    sched: SchedStrategy,
    strategy: FanOutStrategy,
    subs: Vec<Subscription>,
    /// The constraint index over `subs`, maintained incrementally by
    /// subscribe/unsubscribe (used by [`FanOutStrategy::Indexed`]; kept in
    /// sync regardless of the active strategy so switching costs nothing).
    index: SubscriptionIndex,
    /// Per-cohort dispatch-latency accumulators, recorded for every batch
    /// whose fan-out ran as deferred parallel tasks (inline dispatch is not
    /// separable from the shared pass, so it records nothing here).
    cohort_latency: Vec<(CohortKey, LatencyStats)>,
    /// Whether the portfolio's predicate union is pushed into the shared
    /// pass (the default). Off, the pass runs pass-all and predicates are
    /// only enforced at fan-out — the reference configuration the pushdown
    /// differential tests and `streaming_bench`'s `predicate` section
    /// compare against (reports must be byte-identical either way).
    pushdown: bool,
    /// Portfolio size from which indexed fan-out defers dispatch into
    /// parallel tasks (see [`with_parallel_fan_out_threshold`]
    /// (Self::with_parallel_fan_out_threshold)). Defaults to
    /// [`PARALLEL_FAN_OUT_SUBS`].
    fan_out_threshold: usize,
    next_id: u64,
    scratches: Vec<RootScratch>,
    batches: u64,
}

impl MultiStreamingEngine {
    /// Creates a multi-query engine sized to the machine. `retention` is the
    /// sliding-window span shared by every subscription; a query's window δ
    /// must fit inside it ([`subscribe`](Self::subscribe) enforces this), so
    /// retention is always at least the maximum subscribed δ.
    pub fn new(retention: Timestamp) -> Result<Self, StreamingError> {
        Self::with_threads(retention, 0)
    }

    /// Creates a multi-query engine with `threads` workers (0 = one per
    /// available core; 1 = strictly sequential delta passes, no pool).
    pub fn with_threads(retention: Timestamp, threads: usize) -> Result<Self, StreamingError> {
        if retention < 0 {
            return Err(StreamingError::RetentionTooSmall {
                delta: 1,
                retention,
            });
        }
        Ok(Self {
            engine: Engine::with_threads(threads),
            graph: SlidingWindowGraph::new(retention),
            retention,
            granularity: Granularity::CoarseGrained,
            sched: SchedStrategy::default(),
            strategy: FanOutStrategy::default(),
            subs: Vec::new(),
            index: SubscriptionIndex::new(),
            cohort_latency: Vec::new(),
            pushdown: true,
            fan_out_threshold: PARALLEL_FAN_OUT_SUBS,
            next_id: QueryId::SOLO.0 + 1,
            scratches: Vec::new(),
            batches: 0,
        })
    }

    /// Partitions the engine's sliding-window ingest (and, for
    /// [`Granularity::Sequential`] passes on a multi-threaded engine, the
    /// shared delta pass) across `spec` shards. Purely a parallelism knob:
    /// per-query reports are byte-identical for every shard count, and a
    /// subscription query's own [`StreamingQuery::shards`] setting is
    /// ignored here — the engine-level layout governs the shared graph.
    ///
    /// Must be called before the first batch is ingested (the shard layout
    /// determines how the window's adjacency is stored).
    ///
    /// # Panics
    /// Panics if any batch has already been ingested.
    pub fn with_shards(mut self, spec: ShardSpec) -> Self {
        assert_eq!(
            self.batches, 0,
            "shard layout must be chosen before the first batch"
        );
        self.graph = SlidingWindowGraph::with_shards(self.retention, spec);
        self
    }

    /// The shard layout of the engine's sliding-window graph.
    pub fn shard_spec(&self) -> ShardSpec {
        self.graph.shard_spec()
    }

    /// Sets the portfolio size from which [`FanOutStrategy::Indexed`] defers
    /// dispatch and runs it as parallel `(cohort, candidate-chunk)` tasks on
    /// the engine's pool (defaults to [`PARALLEL_FAN_OUT_SUBS`] = 64). Below
    /// the threshold, per-candidate inline dispatch skips the buffering of
    /// candidates entirely. Tuning it trades dispatch latency against task
    /// overhead; reports are byte-identical at every setting.
    pub fn with_parallel_fan_out_threshold(mut self, subs: usize) -> Self {
        self.fan_out_threshold = subs;
        self
    }

    /// The portfolio size from which indexed fan-out goes parallel (see
    /// [`with_parallel_fan_out_threshold`](Self::with_parallel_fan_out_threshold)).
    pub fn parallel_fan_out_threshold(&self) -> usize {
        self.fan_out_threshold
    }

    /// Selects how the shared delta pass is split across workers (the same
    /// knob as [`StreamingQuery::granularity`], but engine-wide: the pass is
    /// shared, so its schedule is too). Defaults to
    /// [`Granularity::CoarseGrained`].
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Selects how idle workers engage the shared pass's fine-grained delta
    /// run *and* the deferred parallel fan-out (the same knob as
    /// [`StreamingQuery::sched`], but engine-wide): work-stealing boxed tasks
    /// (the default) or packed-atomic work-assisting loops. Per-query reports
    /// are byte-identical either way — each strategy is the other's
    /// differential oracle — and the setting is not part of durable
    /// checkpoints.
    pub fn with_sched(mut self, sched: SchedStrategy) -> Self {
        self.sched = sched;
        self
    }

    /// The active scheduling strategy (see [`with_sched`](Self::with_sched)).
    pub fn sched_strategy(&self) -> SchedStrategy {
        self.sched
    }

    /// Selects how candidates of the shared pass are routed to subscriptions
    /// (defaults to [`FanOutStrategy::Indexed`]). [`FanOutStrategy::Naive`]
    /// is the linear reference dispatcher, kept for differential testing and
    /// benchmarking; both produce byte-identical per-query reports.
    pub fn with_fan_out(mut self, strategy: FanOutStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The active fan-out strategy.
    pub fn fan_out_strategy(&self) -> FanOutStrategy {
        self.strategy
    }

    /// Enables or disables predicate pushdown (on by default). On, the
    /// shared pass evaluates the portfolio's [`EdgePredicate::union`] during
    /// traversal, so attribute-rejected edges never enter the per-root cycle
    /// union or extend a path; off, the pass runs unfiltered and predicates
    /// are enforced only by the exact per-subscription re-check at fan-out.
    /// Per-query reports are **byte-identical** either way (the union rejects
    /// an edge only when every subscription does) — the off position exists
    /// as the differential oracle and benchmark baseline.
    pub fn with_pushdown(mut self, on: bool) -> Self {
        self.pushdown = on;
        self
    }

    /// Whether the shared pass pushes the portfolio's predicate union down
    /// into traversal (see [`with_pushdown`](Self::with_pushdown)).
    pub fn pushdown_enabled(&self) -> bool {
        self.pushdown
    }

    /// The constraint index over the current subscriptions (read-only — the
    /// engine maintains it incrementally across subscribe/unsubscribe).
    pub fn subscription_index(&self) -> &SubscriptionIndex {
        &self.index
    }

    /// Per-batch dispatch latency attributed to the cohort `key`, accumulated
    /// over every batch whose fan-out ran as deferred parallel tasks (see
    /// [`FanOutReport::parallel`]; inline dispatch is folded into the shared
    /// pass and records nothing here). `None` when no such batch has run for
    /// that cohort.
    pub fn cohort_latency(&self, key: &CohortKey) -> Option<&LatencyStats> {
        self.cohort_latency
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, l)| l)
    }

    /// Registers a standing query against the shared stream and returns its
    /// stable [`QueryId`]. The query only observes cycles **closed** by
    /// batches ingested *after* this call, but those cycles may reach back
    /// through the window's retained history — the semantics of a dedicated
    /// engine that had been ingesting the same stream all along and starts
    /// *reporting* now (the right behaviour for alerting: a ring completed
    /// after you subscribe is a ring, even when its older transfers predate
    /// the subscription). A subscriber that must ignore pre-subscription
    /// edges entirely should filter reported cycles by edge timestamp.
    ///
    /// Fails with [`StreamingError::Query`] on an invalid query and
    /// [`StreamingError::RetentionTooSmall`] when the query's window δ
    /// exceeds the engine's retention.
    pub fn subscribe(&mut self, query: StreamingQuery) -> Result<QueryId, StreamingError> {
        query.validate()?;
        if query.window_delta > self.retention {
            return Err(StreamingError::RetentionTooSmall {
                delta: query.window_delta,
                retention: self.retention,
            });
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.index.insert(id, &query);
        self.subs.push(Subscription {
            id,
            query,
            total_cycles: 0,
            latency: LatencyStats::new(),
        });
        Ok(id)
    }

    /// Removes a subscription; later batches stop reporting for it. Returns
    /// `false` when `id` was not subscribed. Ids are never reused.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|s| s.id != id);
        let removed = self.subs.len() != before;
        if removed {
            let indexed = self.index.remove(id);
            debug_assert!(indexed, "index tracks every subscription");
        }
        removed
    }

    /// The active subscriptions, in subscription order.
    pub fn subscriptions(&self) -> impl Iterator<Item = (QueryId, &StreamingQuery)> {
        self.subs.iter().map(|s| (s.id, &s.query))
    }

    /// A point-in-time snapshot of every subscription's durable state — id,
    /// query, lifetime cycle total — in subscription (ascending-id) order.
    /// This is the registry a checkpoint persists; feeding each entry back
    /// through [`restore_subscription`](Self::restore_subscription) on a
    /// fresh engine reproduces the registry exactly.
    pub fn subscription_snapshots(&self) -> Vec<SubscriptionSnapshot> {
        self.subs
            .iter()
            .map(|s| SubscriptionSnapshot {
                id: s.id,
                query: s.query.clone(),
                total_cycles: s.total_cycles,
            })
            .collect()
    }

    /// Re-registers a checkpointed subscription under its original id with
    /// its lifetime cycle total, for recovery paths rebuilding an engine from
    /// persistent state.
    ///
    /// The same validation as [`subscribe`](Self::subscribe) applies, plus an
    /// id-discipline check: `snapshot.id` must be at least the next id this
    /// engine would assign — i.e. greater than every id ever issued — so
    /// restores must replay the registry in ascending-id order, typically
    /// onto a fresh engine. This preserves the two invariants the
    /// engine relies on (`subs` sorted by id; ids never reused) and keeps
    /// post-recovery [`subscribe`](Self::subscribe) calls collision-free:
    /// `next_id` is bumped past the restored id. Latency percentiles restart
    /// fresh — they are observability, not durable state.
    ///
    /// Fails with [`StreamingError::Query`] on an invalid query,
    /// [`StreamingError::RetentionTooSmall`] when the query's window δ
    /// exceeds the engine's retention, and
    /// [`StreamingError::RestoreIdCollision`] when the id would break
    /// monotonicity.
    pub fn restore_subscription(
        &mut self,
        snapshot: SubscriptionSnapshot,
    ) -> Result<QueryId, StreamingError> {
        snapshot.query.validate()?;
        if snapshot.query.window_delta > self.retention {
            return Err(StreamingError::RetentionTooSmall {
                delta: snapshot.query.window_delta,
                retention: self.retention,
            });
        }
        if snapshot.id.0 < self.next_id {
            return Err(StreamingError::RestoreIdCollision {
                id: snapshot.id,
                next_id: self.next_id,
            });
        }
        self.next_id = snapshot.id.0 + 1;
        self.index.insert(snapshot.id, &snapshot.query);
        self.subs.push(Subscription {
            id: snapshot.id,
            query: snapshot.query,
            total_cycles: snapshot.total_cycles,
            latency: LatencyStats::new(),
        });
        Ok(snapshot.id)
    }

    /// Aligns the engine's batch counter with a resumed stream so that
    /// post-recovery [`BatchReport::batch`] indices continue the original
    /// numbering instead of restarting at zero. Recovery calls this after
    /// hydrating the window and before replaying logged batches.
    pub fn resume_at_batch(&mut self, batch: u64) {
        self.batches = batch;
    }

    /// The id the next [`subscribe`](Self::subscribe) call would be assigned.
    /// Checkpoints persist this so that ids stay never-reused **across
    /// restarts** even when the highest id ever issued was unsubscribed
    /// before the checkpoint (restoring the live registry alone would let it
    /// be handed out again).
    pub fn next_query_id(&self) -> u64 {
        self.next_id
    }

    /// Raises the next-id floor to at least `next_id` (never lowers it).
    /// Recovery calls this with the checkpointed
    /// [`next_query_id`](Self::next_query_id) after restoring the registry.
    pub fn advance_query_ids(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// The engine-wide granularity of the shared delta pass (set by
    /// [`with_granularity`](Self::with_granularity)).
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of active subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.subs.len()
    }

    /// Per-batch latency percentiles observed by subscription `id` since it
    /// subscribed (each batch's shared ingest + enumeration time counts once
    /// per query — that is the latency its consumer experiences).
    pub fn latency(&self, id: QueryId) -> Option<&LatencyStats> {
        self.subs.iter().find(|s| s.id == id).map(|s| &s.latency)
    }

    /// Total cycles reported to subscription `id` since it subscribed.
    pub fn total_cycles(&self, id: QueryId) -> Option<u64> {
        self.subs
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.total_cycles)
    }

    /// The shared sliding-window graph.
    pub fn graph(&self) -> &SlidingWindowGraph {
        &self.graph
    }

    /// The inner [`Engine`] (and its reusable pool).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Materialises the current window as an immutable [`TemporalGraph`].
    pub fn snapshot(&self) -> TemporalGraph {
        self.graph.snapshot()
    }

    /// Ingests one batch of edges — **one** append/expiry pass and **one**
    /// shared delta enumeration, fanned out to every subscription — and
    /// returns the per-query reports.
    ///
    /// A rejected batch ([`StreamingError::Stream`]) leaves the graph, the
    /// stream and every subscription fully intact. A batch ingested with no
    /// subscriptions still advances the window: the retained history is
    /// shared state, available to any later subscriber (see
    /// [`subscribe`](Self::subscribe) for the exact semantics).
    pub fn ingest(&mut self, batch: &[TemporalEdge]) -> Result<MultiBatchReport, StreamingError> {
        let t0 = Instant::now();
        let pool = (self.engine.threads() > 1 && !self.graph.shard_spec().is_single())
            .then(|| self.engine.pool().as_ref());
        let delta = self.graph.append_batch_on(batch, pool)?;
        let ingest_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let (per_query, candidates, stats, fan_out) = match SharedPass::covering(&self.subs) {
            None => (
                Vec::new(),
                0,
                RunStats::default(),
                FanOutReport::empty(self.strategy),
            ),
            Some(mut pass) => {
                if !self.pushdown {
                    // The oracle configuration: enumerate unfiltered, rely
                    // on the fan-out re-checks alone.
                    pass.predicate = CyclePredicate::pass_all();
                }
                let granularity = self.effective_granularity(delta.roots.len());
                // Sequential-granularity engines with a sharded graph run
                // the shared pass shard-parallel (see `StreamingEngine::
                // ingest` — the same engagement rule applies here, keyed on
                // the engine-wide granularity).
                let sharded = (self.granularity == Granularity::Sequential
                    && self.engine.threads() > 1
                    && !self.graph.shard_spec().is_single()
                    && !delta.roots.is_empty())
                .then(|| self.graph.shard_spec());
                let want = if sharded.is_some() {
                    self.engine.threads()
                } else if granularity == Granularity::Sequential {
                    1
                } else {
                    self.engine.threads()
                };
                if self.scratches.len() < want {
                    self.scratches.resize_with(want, || RootScratch::new(0));
                }
                for scratch in &mut self.scratches {
                    scratch.ensure_vertices(self.graph.num_vertices());
                }
                let pass_query = pass.as_query(granularity, self.sched);
                match self.strategy {
                    FanOutStrategy::Naive => {
                        let sink = FanOutSink::new(&self.graph, &self.subs);
                        let stats = run_delta(
                            &pass_query,
                            &self.engine,
                            &self.graph,
                            &mut self.scratches,
                            &sink,
                            delta.roots.clone(),
                            Timestamp::MIN,
                            granularity,
                            sharded,
                        );
                        let candidates = sink.candidates.load(Ordering::Relaxed);
                        // Resolve ids to concrete edges *now*: dense ids are
                        // re-based when the window compacts, so nothing may
                        // outlive the batch.
                        let per_query: Vec<(u64, Vec<StreamCycle>)> = sink
                            .accums
                            .iter()
                            .map(|accum| {
                                let resolved = std::mem::take(&mut *accum.cycles.lock())
                                    .into_iter()
                                    .map(|c| resolve_cycle(&self.graph, c))
                                    .collect();
                                (accum.count.load(Ordering::Relaxed), resolved)
                            })
                            .collect();
                        let fan_out = FanOutReport {
                            strategy: FanOutStrategy::Naive,
                            parallel: false,
                            checks: sink.checks.load(Ordering::Relaxed),
                            fan_out_secs: 0.0,
                            joins: 0,
                            assists: 0,
                            cohorts: Vec::new(),
                        };
                        (per_query, candidates, stats, fan_out)
                    }
                    FanOutStrategy::Indexed => {
                        let accums = self.index.make_accums();
                        let counters = self.index.make_counters();
                        // Large portfolios defer dispatch and fan out as
                        // parallel (cohort, chunk) tasks after the pass;
                        // below the threshold, inline dispatch inside the
                        // pass avoids buffering the candidates.
                        let deferred =
                            self.engine.threads() > 1 && self.subs.len() >= self.fan_out_threshold;
                        let (stats, candidates, fan_out_secs, parallel, dispatch_stats) =
                            if deferred {
                                let sink =
                                    BufferingFanOutSink::new(&self.graph, self.engine.threads());
                                let stats = run_delta(
                                    &pass_query,
                                    &self.engine,
                                    &self.graph,
                                    &mut self.scratches,
                                    &sink,
                                    delta.roots.clone(),
                                    Timestamp::MIN,
                                    granularity,
                                    sharded,
                                );
                                let buffered = sink.into_candidates();
                                let t_fan = Instant::now();
                                let dispatch_stats = dispatch_deferred(
                                    self.engine.pool(),
                                    self.sched,
                                    &self.index,
                                    &buffered,
                                    &accums,
                                    &counters,
                                );
                                (
                                    stats,
                                    buffered.len() as u64,
                                    t_fan.elapsed().as_secs_f64(),
                                    !buffered.is_empty(),
                                    dispatch_stats,
                                )
                            } else {
                                let sink = IndexedFanOutSink {
                                    graph: &self.graph,
                                    index: &self.index,
                                    accums: &accums,
                                    counters: &counters,
                                    candidates: AtomicU64::new(0),
                                };
                                let stats = run_delta(
                                    &pass_query,
                                    &self.engine,
                                    &self.graph,
                                    &mut self.scratches,
                                    &sink,
                                    delta.roots.clone(),
                                    Timestamp::MIN,
                                    granularity,
                                    sharded,
                                );
                                let candidates = sink.candidates.load(Ordering::Relaxed);
                                (
                                    stats,
                                    candidates,
                                    0.0,
                                    false,
                                    pce_sched::AssistingForStats::default(),
                                )
                            };
                        // Distribute group results to members: one resolution
                        // per group, cloned only into collecting members.
                        let mut per_query: Vec<(u64, Vec<StreamCycle>)> =
                            self.subs.iter().map(|_| (0u64, Vec::new())).collect();
                        for (ci, cohort) in self.index.cohorts.iter().enumerate() {
                            for (gi, group) in cohort.groups.iter().enumerate() {
                                let accum = &accums[ci][gi];
                                let count = accum.count.load(Ordering::Relaxed);
                                let resolved: Vec<StreamCycle> =
                                    std::mem::take(&mut *accum.cycles.lock())
                                        .into_iter()
                                        .map(|c| resolve_cycle(&self.graph, c))
                                        .collect();
                                for member in &group.members {
                                    // Subscription ids are assigned
                                    // monotonically and `subs` keeps
                                    // subscription order, so it is sorted by
                                    // id.
                                    let slot = self
                                        .subs
                                        .binary_search_by_key(&member.id, |s| s.id)
                                        .expect("index tracks every subscription");
                                    per_query[slot].0 = count;
                                    if member.collect {
                                        per_query[slot].1 = resolved.clone();
                                    }
                                }
                            }
                        }
                        let cohorts: Vec<CohortBatchStats> = self
                            .index
                            .cohorts
                            .iter()
                            .zip(&counters)
                            .map(|(c, k)| CohortBatchStats {
                                key: c.key.clone(),
                                subscriptions: c.subscriptions(),
                                groups: c.groups.len(),
                                offered: k.offered.load(Ordering::Relaxed),
                                checks: k.checks.load(Ordering::Relaxed),
                                accepted: k.accepted.load(Ordering::Relaxed),
                                busy_secs: k.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9,
                            })
                            .collect();
                        let fan_out = FanOutReport {
                            strategy: FanOutStrategy::Indexed,
                            parallel,
                            checks: cohorts.iter().map(|c| c.checks).sum(),
                            fan_out_secs,
                            joins: dispatch_stats.joins,
                            assists: dispatch_stats.assists,
                            cohorts,
                        };
                        (per_query, candidates, stats, fan_out)
                    }
                }
            }
        };
        let enumerate_secs = t1.elapsed().as_secs_f64();
        if fan_out.parallel {
            // Per-cohort dispatch latency is only separable when the batch
            // ran the deferred parallel dispatcher.
            for c in &fan_out.cohorts {
                match self.cohort_latency.iter_mut().find(|(k, _)| *k == c.key) {
                    Some((_, latency)) => latency.record(c.busy_secs),
                    None => {
                        let mut latency = LatencyStats::new();
                        latency.record(c.busy_secs);
                        self.cohort_latency.push((c.key.clone(), latency));
                    }
                }
            }
        }
        let latency_secs = ingest_secs + enumerate_secs;
        let live_edges = self.graph.live_edges().len();

        // The accumulators were built parallel to `subs` (None pass only when
        // `subs` is empty), so the zip below is index-aligned by construction.
        debug_assert_eq!(per_query.len(), self.subs.len());
        let mut reports = Vec::with_capacity(self.subs.len());
        for (sub, (cycles_found, cycles)) in self.subs.iter_mut().zip(per_query) {
            sub.total_cycles += cycles_found;
            sub.latency.record(latency_secs);
            let mut query_stats = stats.clone();
            query_stats.cycles = cycles_found;
            reports.push(BatchReport {
                query: sub.id,
                batch: self.batches,
                appended: delta.appended,
                expired: delta.expired,
                live_edges,
                window: delta.window,
                cycles_found,
                cycles,
                ingest_secs,
                enumerate_secs,
                stats: query_stats,
            });
        }

        let report = MultiBatchReport {
            batch: self.batches,
            appended: delta.appended,
            expired: delta.expired,
            live_edges,
            window: delta.window,
            ingest_secs,
            enumerate_secs,
            candidates,
            stats,
            fan_out,
            reports,
        };
        self.batches += 1;
        Ok(report)
    }

    /// Mirrors [`StreamingEngine::effective_granularity`] for the shared
    /// pass.
    fn effective_granularity(&self, batch_roots: usize) -> Granularity {
        if self.engine.threads() <= 1 || batch_roots == 0 {
            return Granularity::Sequential;
        }
        match self.granularity {
            Granularity::CoarseGrained if batch_roots <= 1 => Granularity::Sequential,
            requested => requested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pce_graph::{GraphBuilder, LabelFilter};

    fn e(src: VertexId, dst: VertexId, ts: Timestamp) -> TemporalEdge {
        TemporalEdge::new(src, dst, ts)
    }

    fn ea(
        src: VertexId,
        dst: VertexId,
        ts: Timestamp,
        amount: Amount,
        label: Label,
    ) -> TemporalEdge {
        TemporalEdge::with_attrs(src, dst, ts, amount, label)
    }

    #[test]
    fn construction_validates_query_and_retention() {
        assert!(matches!(
            StreamingEngine::new(100, StreamingQuery::simple(0)),
            Err(StreamingError::Query(EnumerationError::InvalidWindow {
                delta: 0
            }))
        ));
        assert!(matches!(
            StreamingEngine::new(100, StreamingQuery::temporal(10).max_len(0)),
            Err(StreamingError::Query(EnumerationError::InvalidMaxLen))
        ));
        assert!(matches!(
            StreamingEngine::new(10, StreamingQuery::temporal(50)),
            Err(StreamingError::RetentionTooSmall {
                delta: 50,
                retention: 10
            })
        ));
        assert!(StreamingEngine::new(50, StreamingQuery::temporal(50)).is_ok());
        // Temporal self-loops have no implementation; the combination is a
        // typed error instead of a silently ignored flag.
        assert!(matches!(
            StreamingEngine::new(100, StreamingQuery::temporal(10).include_self_loops(true)),
            Err(StreamingError::Query(
                EnumerationError::SelfLoopsUnsupported
            ))
        ));
        assert!(
            StreamingEngine::new(100, StreamingQuery::simple(10).include_self_loops(true)).is_ok()
        );
    }

    #[test]
    fn cycles_are_reported_at_the_closing_batch_only() {
        let mut eng =
            StreamingEngine::with_threads(1_000, StreamingQuery::simple(1_000), 1).unwrap();
        let r = eng.ingest(&[e(0, 1, 1), e(1, 2, 2)]).unwrap();
        assert_eq!(r.cycles_found, 0);
        let r = eng.ingest(&[e(2, 0, 3), e(3, 4, 3)]).unwrap();
        assert_eq!(r.cycles_found, 1);
        assert_eq!(r.cycles.len(), 1);
        let c = &r.cycles[0].canonicalize();
        assert_eq!(c.edges[0], e(0, 1, 1));
        assert_eq!(c.vertices.len(), 3);
        // Re-ingesting unrelated edges does not re-report the triangle.
        let r = eng.ingest(&[e(4, 3, 4)]).unwrap();
        assert_eq!(r.cycles_found, 1, "only the new 3↔4 cycle");
        assert_eq!(eng.total_cycles(), 2);
        assert_eq!(eng.batches(), 3);
    }

    #[test]
    fn reports_do_not_depend_on_batch_boundaries() {
        // Regression: the closing edge (2→0, t=100) used to be skipped when
        // a much newer edge in the *same* batch advanced the watermark (and
        // therefore the window floor) past it. With delta <= retention every
        // edge the root needs is still stored, so the ring must be reported
        // whether or not the batch also carries the newer edge.
        let one_batch = {
            let mut eng =
                StreamingEngine::with_threads(100, StreamingQuery::temporal(100), 1).unwrap();
            eng.ingest(&[e(0, 1, 1), e(1, 2, 50)]).unwrap();
            eng.ingest(&[e(2, 0, 100), e(8, 9, 250)])
                .unwrap()
                .cycles_found
        };
        let split = {
            let mut eng =
                StreamingEngine::with_threads(100, StreamingQuery::temporal(100), 1).unwrap();
            eng.ingest(&[e(0, 1, 1), e(1, 2, 50)]).unwrap();
            let n = eng.ingest(&[e(2, 0, 100)]).unwrap().cycles_found;
            n + eng.ingest(&[e(8, 9, 250)]).unwrap().cycles_found
        };
        assert_eq!(
            one_batch, 1,
            "ring closes even when its batch spans far ahead"
        );
        assert_eq!(one_batch, split);
    }

    #[test]
    fn expired_edges_no_longer_close_cycles() {
        let mut eng = StreamingEngine::with_threads(10, StreamingQuery::simple(10), 1).unwrap();
        eng.ingest(&[e(0, 1, 0)]).unwrap();
        // The closing edge arrives after 0→1 fell out of the window.
        let r = eng.ingest(&[e(1, 0, 50)]).unwrap();
        assert_eq!(r.expired, 1);
        assert_eq!(r.cycles_found, 0);
        // A fresh pair inside one window closes normally.
        let r = eng.ingest(&[e(0, 1, 55)]).unwrap();
        assert_eq!(r.cycles_found, 1);
    }

    #[test]
    fn out_of_order_batches_propagate_and_preserve_state() {
        let mut eng = StreamingEngine::with_threads(100, StreamingQuery::simple(100), 1).unwrap();
        eng.ingest(&[e(0, 1, 10)]).unwrap();
        let err = eng.ingest(&[e(1, 0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            StreamingError::Stream(StreamError::OutOfOrder { .. })
        ));
        // The stream keeps going; the corrected batch closes the cycle.
        let r = eng.ingest(&[e(1, 0, 15)]).unwrap();
        assert_eq!(r.cycles_found, 1);
    }

    #[test]
    fn count_mode_skips_materialisation() {
        let mut eng = StreamingEngine::with_threads(
            1_000,
            StreamingQuery::temporal(100).collect(CollectMode::Count),
            1,
        )
        .unwrap();
        eng.ingest(&[e(0, 1, 1), e(1, 2, 2)]).unwrap();
        let r = eng.ingest(&[e(2, 0, 3)]).unwrap();
        assert_eq!(r.cycles_found, 1);
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn union_of_batches_matches_one_shot_on_final_window() {
        // A small deterministic stream with no expiry: the union of per-batch
        // cycles must equal a one-shot run over the final snapshot. (The full
        // seeded sweep with expiry lives in tests/streaming.rs.)
        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(2, 3, 4),
            e(3, 2, 5),
            e(0, 2, 6),
            e(2, 1, 7),
            e(1, 0, 8),
        ];
        for batch_size in [1, 3, 8] {
            let mut eng =
                StreamingEngine::with_threads(1_000, StreamingQuery::temporal(1_000), 1).unwrap();
            let mut union: Vec<StreamCycle> = Vec::new();
            for chunk in edges.chunks(batch_size) {
                union.extend(eng.ingest(chunk).unwrap().cycles);
            }
            let snapshot = eng.snapshot();
            let one_shot = crate::Engine::with_threads(1)
                .run(
                    &crate::Query::temporal()
                        .window(1_000)
                        .collect(CollectMode::Collect),
                    &snapshot,
                )
                .unwrap();
            let mut union: Vec<StreamCycle> = union.iter().map(StreamCycle::canonicalize).collect();
            union.sort_by(|a, b| a.edges.cmp(&b.edges));
            let mut reference: Vec<StreamCycle> = one_shot
                .cycles
                .unwrap()
                .iter()
                .map(|c| {
                    StreamCycle {
                        vertices: c.vertices.clone(),
                        edges: c.edges.iter().map(|&id| snapshot.edge(id)).collect(),
                    }
                    .canonicalize()
                })
                .collect();
            reference.sort_by(|a, b| a.edges.cmp(&b.edges));
            assert_eq!(union, reference, "batch_size {batch_size}");
            assert!(!reference.is_empty());
        }
    }

    #[test]
    fn granularities_agree_and_are_recorded() {
        // Deterministic stream with a couple of overlapping rings; every
        // granularity must report the same cycles at the same batches.
        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(2, 3, 4),
            e(3, 2, 5),
            e(0, 2, 6),
            e(2, 1, 7),
            e(1, 0, 8),
        ];
        let mut reference: Option<Vec<u64>> = None;
        for granularity in [
            Granularity::Sequential,
            Granularity::CoarseGrained,
            Granularity::FineGrained,
        ] {
            let mut eng = StreamingEngine::with_threads(
                1_000,
                StreamingQuery::temporal(1_000).granularity(granularity),
                4,
            )
            .unwrap();
            assert_eq!(eng.query().requested_granularity(), granularity);
            let mut per_batch = Vec::new();
            for chunk in edges.chunks(3) {
                let report = eng.ingest(chunk).unwrap();
                per_batch.push(report.cycles_found);
                if granularity == Granularity::FineGrained && !chunk.is_empty() {
                    assert_eq!(
                        report.stats.granularity,
                        Some(Granularity::FineGrained),
                        "fine runs must be tagged as such"
                    );
                }
            }
            match &reference {
                None => reference = Some(per_batch),
                Some(expected) => assert_eq!(&per_batch, expected, "{granularity:?}"),
            }
        }
    }

    #[test]
    fn single_threaded_engine_degrades_every_granularity_to_sequential() {
        let mut eng = StreamingEngine::with_threads(
            1_000,
            StreamingQuery::simple(1_000).granularity(Granularity::FineGrained),
            1,
        )
        .unwrap();
        eng.ingest(&[e(0, 1, 1)]).unwrap();
        let report = eng.ingest(&[e(1, 0, 2)]).unwrap();
        assert_eq!(report.cycles_found, 1);
        assert_eq!(report.stats.granularity, Some(Granularity::Sequential));
        assert_eq!(report.stats.threads, 1);
    }

    #[test]
    fn stream_cycle_canonicalisation_is_rotation_invariant() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 1)
            .add_edge(1, 2, 2)
            .add_edge(2, 0, 3)
            .build();
        let a = StreamCycle {
            vertices: vec![1, 2, 0],
            edges: vec![g.edge(1), g.edge(2), g.edge(0)],
        };
        let b = StreamCycle {
            vertices: vec![0, 1, 2],
            edges: vec![g.edge(0), g.edge(1), g.edge(2)],
        };
        assert_eq!(a.canonicalize(), b.canonicalize());
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    /// Replays `batches` through one dedicated [`StreamingEngine`] and
    /// returns its canonicalised per-batch cycle unions.
    fn dedicated_per_batch(
        batches: &[Vec<TemporalEdge>],
        retention: Timestamp,
        query: StreamingQuery,
        threads: usize,
    ) -> Vec<Vec<StreamCycle>> {
        let mut engine = StreamingEngine::with_threads(retention, query, threads).unwrap();
        batches
            .iter()
            .map(|b| {
                let mut cycles: Vec<StreamCycle> = engine
                    .ingest(b)
                    .unwrap()
                    .cycles
                    .iter()
                    .map(StreamCycle::canonicalize)
                    .collect();
                cycles.sort_by(|a, b| a.edges.cmp(&b.edges));
                cycles
            })
            .collect()
    }

    #[test]
    fn multi_engine_construction_and_subscribe_validation() {
        assert!(matches!(
            MultiStreamingEngine::with_threads(-1, 1),
            Err(StreamingError::RetentionTooSmall { .. })
        ));
        let mut engine = MultiStreamingEngine::with_threads(100, 1).unwrap();
        assert!(matches!(
            engine.subscribe(StreamingQuery::simple(0)),
            Err(StreamingError::Query(EnumerationError::InvalidWindow {
                delta: 0
            }))
        ));
        assert!(matches!(
            engine.subscribe(StreamingQuery::temporal(10).include_self_loops(true)),
            Err(StreamingError::Query(
                EnumerationError::SelfLoopsUnsupported
            ))
        ));
        assert!(matches!(
            engine.subscribe(StreamingQuery::temporal(500)),
            Err(StreamingError::RetentionTooSmall {
                delta: 500,
                retention: 100
            })
        ));
        // An unsatisfiable predicate is refused up front, like every other
        // can-never-match query shape.
        assert!(matches!(
            engine.subscribe(
                StreamingQuery::temporal(10)
                    .predicate(EdgePredicate::pass_all().min_amount(5).max_amount(4)),
            ),
            Err(StreamingError::Query(
                EnumerationError::InvalidPredicate { .. }
            ))
        ));
        assert!(matches!(
            engine.subscribe(
                StreamingQuery::temporal(10)
                    .predicate(EdgePredicate::pass_all().labels(LabelFilter::allow(Vec::new()))),
            ),
            Err(StreamingError::Query(
                EnumerationError::InvalidPredicate { .. }
            ))
        ));
        assert_eq!(engine.num_subscriptions(), 0);
        let id = engine.subscribe(StreamingQuery::temporal(100)).unwrap();
        assert_eq!(engine.num_subscriptions(), 1);
        assert_eq!(engine.subscriptions().next().unwrap().0, id);
        assert_ne!(id, QueryId::SOLO, "subscription ids start above SOLO");
    }

    #[test]
    fn multi_engine_matches_dedicated_engines_per_batch() {
        // A stream with overlapping rings of several spans and lengths, cut
        // into batches; every subscription must report, batch by batch,
        // exactly what its own dedicated engine reports.
        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(2, 3, 4),
            e(3, 2, 5),
            e(0, 2, 6),
            e(2, 1, 7),
            e(1, 0, 8),
            e(3, 3, 9),
            e(1, 3, 10),
            e(3, 0, 11),
            e(0, 1, 12),
        ];
        let batches: Vec<Vec<TemporalEdge>> = edges.chunks(3).map(<[_]>::to_vec).collect();
        let retention = 1_000;
        let portfolio = [
            StreamingQuery::temporal(1_000),
            StreamingQuery::temporal(4),
            StreamingQuery::simple(1_000).include_self_loops(true),
            StreamingQuery::simple(6).max_len(2),
            // Predicate-bearing member: deny-list that the stream's
            // unattributed (label 0) edges all pass, so the predicate path
            // is exercised end to end without changing what is reportable.
            StreamingQuery::temporal(1_000)
                .predicate(EdgePredicate::pass_all().labels(LabelFilter::deny(vec![9]))),
        ];
        for threads in [1, 4] {
            let mut multi = MultiStreamingEngine::with_threads(retention, threads).unwrap();
            let ids: Vec<QueryId> = portfolio
                .iter()
                .map(|q| multi.subscribe(q.clone()).unwrap())
                .collect();
            let mut per_query: Vec<Vec<Vec<StreamCycle>>> =
                portfolio.iter().map(|_| Vec::new()).collect();
            for batch in &batches {
                let report = multi.ingest(batch).unwrap();
                assert_eq!(report.reports.len(), portfolio.len());
                for (slot, id) in per_query.iter_mut().zip(&ids) {
                    let r = report.report(*id).unwrap();
                    assert_eq!(r.query, *id);
                    assert_eq!(r.cycles_found, r.cycles.len() as u64);
                    let mut cycles: Vec<StreamCycle> =
                        r.cycles.iter().map(StreamCycle::canonicalize).collect();
                    cycles.sort_by(|a, b| a.edges.cmp(&b.edges));
                    slot.push(cycles);
                }
            }
            for ((query, id), observed) in portfolio.iter().zip(&ids).zip(&per_query) {
                let expected = dedicated_per_batch(&batches, retention, query.clone(), threads);
                assert_eq!(observed, &expected, "query {id} threads {threads}");
                let total: u64 = expected.iter().map(|b| b.len() as u64).sum();
                assert_eq!(multi.total_cycles(*id), Some(total));
            }
        }
    }

    #[test]
    fn shared_pass_covers_the_loosest_constraints() {
        let subs = |queries: &[StreamingQuery]| -> Vec<Subscription> {
            queries
                .iter()
                .enumerate()
                .map(|(i, q)| Subscription {
                    id: QueryId(i as u64 + 1),
                    query: q.clone(),
                    total_cycles: 0,
                    latency: LatencyStats::new(),
                })
                .collect()
        };
        assert_eq!(SharedPass::covering(&[]), None);
        // All-temporal portfolio keeps the temporal pruning.
        let pass = SharedPass::covering(&subs(&[
            StreamingQuery::temporal(10).max_len(3),
            StreamingQuery::temporal(40).max_len(5),
        ]))
        .unwrap();
        assert_eq!(pass.kind, CycleKind::Temporal);
        assert_eq!(pass.delta, 40);
        assert_eq!(pass.max_len, Some(5));
        assert!(!pass.include_self_loops);
        // One simple query switches the pass to the simple search; one
        // unbounded query drops the length bound.
        let pass = SharedPass::covering(&subs(&[
            StreamingQuery::temporal(50).max_len(4),
            StreamingQuery::simple(20).include_self_loops(true),
        ]))
        .unwrap();
        assert_eq!(pass.kind, CycleKind::Simple);
        assert_eq!(pass.delta, 50);
        assert_eq!(pass.max_len, None);
        assert!(pass.include_self_loops);
        assert!(
            pass.predicate.is_pass_all(),
            "unfiltered portfolios keep the zero-cost pass-all predicate"
        );

        // The predicate axis takes the union (amount hull, label-filter
        // union): the weakest predicate implied by every subscription.
        let pass = SharedPass::covering(&subs(&[
            StreamingQuery::temporal(10)
                .predicate(EdgePredicate::pass_all().min_amount(100).max_amount(500)),
            StreamingQuery::temporal(10)
                .predicate(EdgePredicate::pass_all().min_amount(50).max_amount(200)),
        ]))
        .unwrap();
        assert_eq!(pass.predicate.edge_predicate().amount_min(), 50);
        assert_eq!(pass.predicate.edge_predicate().amount_max(), 500);
        // One unfiltered subscription widens the union to pass-all.
        let pass = SharedPass::covering(&subs(&[
            StreamingQuery::temporal(10)
                .predicate(EdgePredicate::pass_all().labels(LabelFilter::allow(vec![1]))),
            StreamingQuery::temporal(10),
        ]))
        .unwrap();
        assert!(pass.predicate.is_pass_all());

        // Extended constraints take the sound hull: total bounds widen to
        // the loosest interval, monotonicity survives only when unanimous,
        // vertex deny-sets intersect.
        let pass = SharedPass::covering(&subs(&[
            StreamingQuery::temporal(10).cycle_predicate(
                CyclePredicate::pass_all()
                    .total_min(100)
                    .total_max(500)
                    .monotone_amounts(true)
                    .vertices(VertexFilter::deny(vec![3, 4])),
            ),
            StreamingQuery::temporal(10).cycle_predicate(
                CyclePredicate::pass_all()
                    .total_min(50)
                    .total_max(900)
                    .vertices(VertexFilter::deny(vec![4, 5])),
            ),
        ]))
        .unwrap();
        assert_eq!(pass.predicate.total_amount_min(), 50);
        assert_eq!(pass.predicate.total_amount_max(), 900);
        assert!(
            !pass.predicate.requires_monotone(),
            "one non-monotone subscription drops the shared monotone prune"
        );
        assert_eq!(
            *pass.predicate.vertex_filter(),
            VertexFilter::deny(vec![4]),
            "only vertices denied by every subscription stay denied"
        );
        // One subscription without extended constraints loosens the hull all
        // the way back to pass-all on those axes.
        let pass = SharedPass::covering(&subs(&[
            StreamingQuery::temporal(10).cycle_predicate(CyclePredicate::pass_all().total_max(500)),
            StreamingQuery::temporal(10),
        ]))
        .unwrap();
        assert!(pass.predicate.is_pass_all());
    }

    #[test]
    fn mid_stream_subscribe_and_unsubscribe() {
        let mut engine = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        let early = engine.subscribe(StreamingQuery::simple(1_000)).unwrap();
        // First ring closes while only `early` is subscribed.
        engine.ingest(&[e(0, 1, 1), e(1, 2, 2)]).unwrap();
        let r = engine.ingest(&[e(2, 0, 3)]).unwrap();
        assert_eq!(r.report(early).unwrap().cycles_found, 1);

        // A late subscriber misses the already-closed ring but sees the next.
        let late = engine.subscribe(StreamingQuery::simple(1_000)).unwrap();
        assert_ne!(late, early, "ids are unique");
        let r = engine.ingest(&[e(3, 4, 4), e(4, 3, 5)]).unwrap();
        assert_eq!(r.report(early).unwrap().cycles_found, 1);
        assert_eq!(r.report(late).unwrap().cycles_found, 1);
        assert_eq!(engine.total_cycles(early), Some(2));
        assert_eq!(engine.total_cycles(late), Some(1));
        assert_eq!(engine.latency(late).unwrap().count(), 1);
        assert_eq!(engine.latency(early).unwrap().count(), 3);

        // Unsubscribing stops the reports (and the id is gone for good).
        assert!(engine.unsubscribe(early));
        assert!(!engine.unsubscribe(early));
        let r = engine.ingest(&[e(5, 6, 6), e(6, 5, 7)]).unwrap();
        assert!(r.report(early).is_none());
        assert_eq!(r.report(late).unwrap().cycles_found, 1);
        assert_eq!(engine.total_cycles(early), None);
        assert_eq!(engine.latency(early), None);
    }

    #[test]
    fn ingest_without_subscriptions_still_advances_the_window() {
        let mut engine = MultiStreamingEngine::with_threads(10, 1).unwrap();
        let r = engine.ingest(&[e(0, 1, 0)]).unwrap();
        assert!(r.reports.is_empty());
        assert_eq!(r.candidates, 0);
        assert_eq!(r.total_cycles(), 0);
        // The un-subscribed batch slid the window; a subscriber added now
        // queries against the shared retained history.
        let id = engine.subscribe(StreamingQuery::simple(10)).unwrap();
        let r = engine.ingest(&[e(1, 0, 50)]).unwrap();
        assert_eq!(r.expired, 1, "the t=0 edge aged out");
        assert_eq!(r.report(id).unwrap().cycles_found, 0);
        assert_eq!(engine.batches(), 2);
    }

    /// Pins the documented late-subscription semantics: a new subscriber
    /// reports cycles *closed* after it subscribed even when their older
    /// edges predate the subscription (the shared window's retained history
    /// is visible to everyone) — it is a dedicated engine that starts
    /// *reporting* now, not one that starts *ingesting* now.
    #[test]
    fn late_subscriber_sees_cycles_closing_through_retained_history() {
        let mut engine = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        engine.ingest(&[e(0, 1, 1)]).unwrap();
        let late = engine.subscribe(StreamingQuery::simple(1_000)).unwrap();
        let r = engine.ingest(&[e(1, 0, 2)]).unwrap();
        assert_eq!(
            r.report(late).unwrap().cycles_found,
            1,
            "the closing batch arrived after the subscription, so the ring \
             is reported even though its first edge predates it"
        );
    }

    #[test]
    fn self_loops_fan_out_only_to_requesting_queries() {
        let mut engine = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        let with = engine
            .subscribe(StreamingQuery::simple(1_000).include_self_loops(true))
            .unwrap();
        let without = engine.subscribe(StreamingQuery::simple(1_000)).unwrap();
        let temporal = engine.subscribe(StreamingQuery::temporal(1_000)).unwrap();
        let r = engine.ingest(&[e(7, 7, 1)]).unwrap();
        assert_eq!(r.report(with).unwrap().cycles_found, 1);
        assert_eq!(r.report(without).unwrap().cycles_found, 0);
        assert_eq!(r.report(temporal).unwrap().cycles_found, 0);
    }

    /// Subscription churn must not disturb compaction, and compaction timing
    /// must not disturb reports: the same stream replayed with and without
    /// mid-stream churn yields identical per-query results.
    #[test]
    fn reports_are_unaffected_by_compaction_and_subscription_churn() {
        // Retention 10 over a 0..~120 stream: plenty of expiry and several
        // compactions (dead prefix outweighs live edges repeatedly).
        let query = StreamingQuery::simple(10);
        let batches: Vec<Vec<TemporalEdge>> = (0..40)
            .map(|i| {
                let t = i as Timestamp * 3;
                vec![e(i % 5, (i + 1) % 5, t), e((i + 1) % 5, i % 5, t + 1)]
            })
            .collect();

        let mut churn = MultiStreamingEngine::with_threads(10, 1).unwrap();
        let keeper = churn.subscribe(query.clone()).unwrap();
        let mut keeper_union: Vec<Vec<StreamCycle>> = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            // Churn an unrelated subscription every third batch.
            if i % 3 == 0 {
                let transient = churn.subscribe(StreamingQuery::temporal(5)).unwrap();
                assert!(churn.unsubscribe(transient));
            }
            let report = churn.ingest(batch).unwrap();
            let mut cycles: Vec<StreamCycle> = report
                .report(keeper)
                .unwrap()
                .cycles
                .iter()
                .map(StreamCycle::canonicalize)
                .collect();
            cycles.sort_by(|a, b| a.edges.cmp(&b.edges));
            keeper_union.push(cycles);
        }
        assert!(
            churn.graph().total_expired() > 0,
            "the stream must exercise expiry"
        );
        let quiet = dedicated_per_batch(&batches, 10, query, 1);
        assert_eq!(keeper_union, quiet, "churn must not change reports");
    }

    #[test]
    fn subscription_index_buckets_cohorts_and_deduplicates_groups() {
        let mut engine = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        assert_eq!(engine.subscription_index().num_cohorts(), 0);
        // Two identical temporal profiles share one constraint group …
        let a = engine
            .subscribe(StreamingQuery::temporal(100).max_len(4))
            .unwrap();
        let b = engine
            .subscribe(StreamingQuery::temporal(100).max_len(4))
            .unwrap();
        // … a different bound opens a second group in the same cohort …
        let c = engine
            .subscribe(StreamingQuery::temporal(100).max_len(6))
            .unwrap();
        // … and simple / self-loop queries land in their own cohorts.
        let d = engine.subscribe(StreamingQuery::simple(50)).unwrap();
        let e = engine
            .subscribe(StreamingQuery::simple(50).include_self_loops(true))
            .unwrap();
        let index = engine.subscription_index();
        assert_eq!(index.num_cohorts(), 3);
        assert_eq!(index.num_groups(), 4);
        assert_eq!(index.num_subscriptions(), 5);
        let summaries = index.summaries();
        let temporal = summaries
            .iter()
            .find(|(k, _, _)| k.kind == CycleKind::Temporal)
            .unwrap();
        assert_eq!((temporal.1, temporal.2), (2, 3), "2 groups over 3 subs");

        // Unsubscribing one sharer keeps the group; removing the last member
        // drops the group, and the cohort once it empties.
        assert!(engine.unsubscribe(a));
        assert_eq!(engine.subscription_index().num_groups(), 4);
        assert!(engine.unsubscribe(b));
        assert_eq!(engine.subscription_index().num_groups(), 3);
        assert!(engine.unsubscribe(c));
        assert_eq!(engine.subscription_index().num_cohorts(), 2);
        assert!(engine.unsubscribe(d));
        assert!(engine.unsubscribe(e));
        assert_eq!(engine.subscription_index().num_cohorts(), 0);
        assert!(!engine.unsubscribe(a), "ids are gone for good");
    }

    /// A [`CandidateShape`] with the given structure and pass-all-compatible
    /// attributes (amount 0, label 0 — what unattributed edges carry).
    fn shape(len: usize, strict: bool) -> CandidateShape {
        CandidateShape {
            span: 0,
            len,
            strict,
            min_amount: 0,
            max_amount: 0,
            labels: vec![0],
            edge_attrs: (0..len)
                .map(|i| {
                    TemporalEdge::new(
                        (i % 2) as VertexId,
                        ((i + 1) % 2) as VertexId,
                        i as Timestamp,
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn predicate_profiles_key_separate_cohorts() {
        let mut engine = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        let p = EdgePredicate::pass_all().min_amount(100);
        let a = engine.subscribe(StreamingQuery::temporal(100)).unwrap();
        let b = engine
            .subscribe(StreamingQuery::temporal(100).predicate(p.clone()))
            .unwrap();
        let c = engine
            .subscribe(StreamingQuery::temporal(200).predicate(p.clone()))
            .unwrap();
        let index = engine.subscription_index();
        assert_eq!(
            index.num_cohorts(),
            2,
            "same kind, distinct predicate profiles → distinct cohorts"
        );
        assert_eq!(index.num_groups(), 3, "(δ, max_len) still dedups inside");
        let summaries = index.summaries();
        assert!(
            summaries
                .iter()
                .any(|(k, _, _)| k.to_string().contains("amount[100..")),
            "cohort display names the predicate profile"
        );
        // Sharing the full profile (predicate included) shares the group.
        let d = engine
            .subscribe(StreamingQuery::temporal(200).predicate(p.clone()))
            .unwrap();
        assert_eq!(engine.subscription_index().num_groups(), 3);
        for id in [a, b, c, d] {
            assert!(engine.unsubscribe(id));
        }
        assert_eq!(engine.subscription_index().num_cohorts(), 0);
    }

    /// The pushdown differential oracle: the same attributed stream and
    /// predicate portfolio, ingested with pushdown on and off, must produce
    /// byte-identical per-query reports — while the pushdown side admits
    /// strictly fewer union members and discovers no more candidates.
    #[test]
    fn predicate_pushdown_matches_post_filter_and_shrinks_unions() {
        // A cheap ring over {0,1,2} (amount 10, label 1) interleaved with an
        // expensive ring over {3,4} (amounts 600–1000, label 7).
        let batches: Vec<Vec<TemporalEdge>> = vec![
            vec![ea(0, 1, 1, 10, 1), ea(3, 4, 2, 1_000, 7)],
            vec![ea(1, 2, 3, 10, 1), ea(4, 3, 4, 600, 7)],
            vec![ea(2, 0, 5, 10, 1)],
        ];
        // Both subscriptions constrain the amount floor, so the portfolio
        // union keeps min_amount 200 (the hull of 500 and 200) and the cheap
        // ring's amount-10 edges are union-rejected during the shared pass.
        let portfolio = [
            StreamingQuery::simple(1_000).predicate(EdgePredicate::pass_all().min_amount(500)),
            StreamingQuery::simple(1_000).predicate(
                EdgePredicate::pass_all()
                    .min_amount(200)
                    .labels(LabelFilter::allow(vec![7])),
            ),
        ];
        for strategy in [FanOutStrategy::Naive, FanOutStrategy::Indexed] {
            let mut push = MultiStreamingEngine::with_threads(1_000, 1)
                .unwrap()
                .with_fan_out(strategy);
            let mut post = MultiStreamingEngine::with_threads(1_000, 1)
                .unwrap()
                .with_fan_out(strategy)
                .with_pushdown(false);
            assert!(push.pushdown_enabled());
            assert!(!post.pushdown_enabled());
            let ids: Vec<QueryId> = portfolio
                .iter()
                .map(|q| {
                    let id = push.subscribe(q.clone()).unwrap();
                    assert_eq!(post.subscribe(q.clone()).unwrap(), id);
                    id
                })
                .collect();
            let (mut push_union, mut post_union) = (0u64, 0u64);
            let mut cycles_seen = 0u64;
            for batch in &batches {
                let rp = push.ingest(batch).unwrap();
                let rq = post.ingest(batch).unwrap();
                push_union += rp.stats.work.total_union_members();
                post_union += rq.stats.work.total_union_members();
                assert!(
                    rp.candidates <= rq.candidates,
                    "pushdown can only discover fewer candidates"
                );
                for id in &ids {
                    let a = rp.report(*id).unwrap();
                    let b = rq.report(*id).unwrap();
                    assert_eq!(a.cycles_found, b.cycles_found, "query {id}");
                    let mut ca: Vec<StreamCycle> =
                        a.cycles.iter().map(StreamCycle::canonicalize).collect();
                    let mut cb: Vec<StreamCycle> =
                        b.cycles.iter().map(StreamCycle::canonicalize).collect();
                    ca.sort_by(|x, y| x.edges.cmp(&y.edges));
                    cb.sort_by(|x, y| x.edges.cmp(&y.edges));
                    assert_eq!(ca, cb, "query {id}");
                    cycles_seen += a.cycles_found;
                }
            }
            assert!(cycles_seen > 0, "the expensive ring must be reported");
            assert!(
                push_union < post_union,
                "pushdown must strictly shrink the union passes \
                 ({push_union} vs {post_union})"
            );
        }
    }

    /// Extended predicates (aggregates, positions, vertex sets) through the
    /// multi-query engine: every fan-out strategy, with pushdown on and off,
    /// must report byte-identically to each query's own dedicated engine —
    /// and the portfolio must actually separate the three planted rings.
    #[test]
    fn extended_predicates_fan_out_exactly_like_dedicated_engines() {
        // Ring A (0→1→2→0): amounts 10,20,30 — monotone, total 60.
        // Ring B (3→4→3): amounts 500,400 — non-monotone, total 900.
        // Ring C (5→6→5): amounts 50,60 — monotone, total 110, touches 6.
        let batches: Vec<Vec<TemporalEdge>> = vec![
            vec![ea(0, 1, 1, 10, 1), ea(1, 2, 2, 20, 1)],
            vec![ea(2, 0, 3, 30, 1), ea(3, 4, 4, 500, 2)],
            vec![ea(4, 3, 5, 400, 2), ea(5, 6, 6, 50, 1)],
            vec![ea(6, 5, 7, 60, 1)],
        ];
        let portfolio = [
            // Monotone amounts → rings A and C.
            StreamingQuery::temporal(1_000)
                .cycle_predicate(CyclePredicate::pass_all().monotone_amounts(true)),
            // Total-amount floor → ring B only.
            StreamingQuery::temporal(1_000)
                .cycle_predicate(CyclePredicate::pass_all().total_min(200)),
            // Vertex deny-set → rings A and B (C passes through vertex 6).
            StreamingQuery::temporal(1_000)
                .cycle_predicate(CyclePredicate::pass_all().vertices(VertexFilter::deny(vec![6]))),
            // Closing-edge amount floor → ring B only (closing amounts are
            // 30, 400 and 60).
            StreamingQuery::temporal(1_000).cycle_predicate(CyclePredicate::pass_all().at(
                pce_graph::Position::FromEnd(0),
                EdgePredicate::pass_all().min_amount(100),
            )),
        ];
        let expected_totals = [2u64, 1, 2, 1];
        for threads in [1usize, 4] {
            let dedicated: Vec<Vec<Vec<StreamCycle>>> = portfolio
                .iter()
                .map(|q| dedicated_per_batch(&batches, 1_000, q.clone(), threads))
                .collect();
            for strategy in [FanOutStrategy::Naive, FanOutStrategy::Indexed] {
                for pushdown in [true, false] {
                    let mut multi = MultiStreamingEngine::with_threads(1_000, threads)
                        .unwrap()
                        .with_fan_out(strategy)
                        .with_pushdown(pushdown);
                    let ids: Vec<QueryId> = portfolio
                        .iter()
                        .map(|q| multi.subscribe(q.clone()).unwrap())
                        .collect();
                    for (bi, batch) in batches.iter().enumerate() {
                        let report = multi.ingest(batch).unwrap();
                        for (qi, id) in ids.iter().enumerate() {
                            let r = report.report(*id).unwrap();
                            let mut cycles: Vec<StreamCycle> =
                                r.cycles.iter().map(StreamCycle::canonicalize).collect();
                            cycles.sort_by(|a, b| a.edges.cmp(&b.edges));
                            assert_eq!(
                                cycles, dedicated[qi][bi],
                                "query {qi} batch {bi} {strategy:?} pushdown={pushdown} \
                                 threads {threads}"
                            );
                        }
                    }
                    for (id, want) in ids.iter().zip(expected_totals) {
                        assert_eq!(multi.total_cycles(*id), Some(want));
                    }
                }
            }
        }
    }

    #[test]
    fn cohort_gate_matches_the_naive_per_subscription_checks() {
        let verts = [0, 1, 0];
        let simple = CohortKey {
            kind: CycleKind::Simple,
            include_self_loops: false,
            predicate: CyclePredicate::pass_all(),
        };
        let loops = CohortKey {
            kind: CycleKind::Simple,
            include_self_loops: true,
            predicate: CyclePredicate::pass_all(),
        };
        let temporal = CohortKey {
            kind: CycleKind::Temporal,
            include_self_loops: false,
            predicate: CyclePredicate::pass_all(),
        };
        // Self-loops (len 1) only pass the opted-in simple cohort.
        assert!(!simple.admits(&shape(1, true), &verts[..1]));
        assert!(loops.admits(&shape(1, true), &verts[..1]));
        assert!(!temporal.admits(&shape(1, true), &verts[..1]));
        // Non-strict candidates only pass simple cohorts.
        assert!(simple.admits(&shape(3, false), &verts));
        assert!(loops.admits(&shape(3, false), &verts));
        assert!(!temporal.admits(&shape(3, false), &verts));
        assert!(temporal.admits(&shape(3, true), &verts));
        // A predicate-bearing cohort additionally gates on the attribute
        // shape, exactly as the naive per-subscription check does.
        let fenced = CohortKey {
            kind: CycleKind::Simple,
            include_self_loops: false,
            predicate: EdgePredicate::pass_all().min_amount(100).into(),
        };
        assert!(
            !fenced.admits(&shape(3, true), &verts),
            "amount 0 < min 100"
        );
        let mut rich = shape(3, true);
        rich.min_amount = 100;
        rich.max_amount = 250;
        assert!(fenced.admits(&rich, &verts));
        // Cycle-level constraints re-check the resolved edge sequence
        // exactly: the total of three amount-0 edges misses a 100 floor, and
        // a denied vertex on the path rejects regardless of attributes.
        let total = CohortKey {
            kind: CycleKind::Simple,
            include_self_loops: false,
            predicate: CyclePredicate::pass_all().total_min(100),
        };
        assert!(!total.admits(&shape(3, true), &verts), "total 0 < min 100");
        let denied = CohortKey {
            kind: CycleKind::Simple,
            include_self_loops: false,
            predicate: CyclePredicate::pass_all().vertices(VertexFilter::deny(vec![1])),
        };
        assert!(!denied.admits(&shape(3, true), &verts));
        assert!(denied.admits(&shape(3, true), &[0, 2, 3]));
    }

    /// Replays one deterministic stream (rings of several spans, lengths and
    /// a self-loop) through both fan-out strategies and asserts per-query,
    /// per-batch byte-identical reports plus the indexed dispatcher doing
    /// strictly less checking work than the linear loop.
    #[test]
    fn indexed_fan_out_matches_naive_loop_batch_by_batch() {
        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(2, 3, 4),
            e(3, 2, 5),
            e(0, 2, 6),
            e(2, 1, 7),
            e(1, 0, 8),
            e(3, 3, 9),
            e(1, 3, 10),
            e(3, 0, 11),
            e(0, 1, 12),
        ];
        let portfolio = [
            StreamingQuery::temporal(1_000),
            StreamingQuery::temporal(4),
            StreamingQuery::simple(1_000).include_self_loops(true),
            StreamingQuery::simple(6).max_len(2),
            StreamingQuery::temporal(4), // duplicate profile: one group
        ];
        for threads in [1usize, 4] {
            let mut naive = MultiStreamingEngine::with_threads(1_000, threads)
                .unwrap()
                .with_fan_out(FanOutStrategy::Naive);
            let mut indexed = MultiStreamingEngine::with_threads(1_000, threads).unwrap();
            assert_eq!(naive.fan_out_strategy(), FanOutStrategy::Naive);
            assert_eq!(indexed.fan_out_strategy(), FanOutStrategy::Indexed);
            let ids: Vec<QueryId> = portfolio
                .iter()
                .map(|q| {
                    let id = naive.subscribe(q.clone()).unwrap();
                    assert_eq!(indexed.subscribe(q.clone()).unwrap(), id);
                    id
                })
                .collect();
            assert!(indexed.subscription_index().num_groups() < portfolio.len());
            for chunk in edges.chunks(3) {
                let rn = naive.ingest(chunk).unwrap();
                let ri = indexed.ingest(chunk).unwrap();
                assert_eq!(rn.candidates, ri.candidates);
                assert_eq!(rn.fan_out.strategy, FanOutStrategy::Naive);
                assert_eq!(ri.fan_out.strategy, FanOutStrategy::Indexed);
                assert!(
                    ri.fan_out.checks <= rn.fan_out.checks,
                    "the index can never check more than the linear loop"
                );
                for id in &ids {
                    let a = rn.report(*id).unwrap();
                    let b = ri.report(*id).unwrap();
                    assert_eq!(a.cycles_found, b.cycles_found, "query {id}");
                    let mut ca: Vec<StreamCycle> =
                        a.cycles.iter().map(StreamCycle::canonicalize).collect();
                    let mut cb: Vec<StreamCycle> =
                        b.cycles.iter().map(StreamCycle::canonicalize).collect();
                    ca.sort_by(|x, y| x.edges.cmp(&y.edges));
                    cb.sort_by(|x, y| x.edges.cmp(&y.edges));
                    assert_eq!(ca, cb, "query {id}");
                }
                // Per-cohort accounting is internally consistent: offered
                // never exceeds candidates, accepted is delivered work.
                for cohort in &ri.fan_out.cohorts {
                    assert!(cohort.offered <= ri.candidates);
                    let delivered: u64 = ids
                        .iter()
                        .zip(&portfolio)
                        .filter(|(_, q)| CohortKey::of(q) == cohort.key)
                        .map(|(id, _)| ri.report(*id).unwrap().cycles_found)
                        .sum();
                    assert_eq!(cohort.accepted, delivered, "cohort {}", cohort.key);
                }
            }
            for id in &ids {
                assert_eq!(naive.total_cycles(*id), indexed.total_cycles(*id));
            }
        }
    }

    /// A portfolio at the [`PARALLEL_FAN_OUT_SUBS`] threshold must take the
    /// deferred parallel dispatch path — and still report exactly what the
    /// naive loop reports, with per-cohort dispatch latency recorded.
    #[test]
    fn large_portfolio_dispatches_in_parallel_with_identical_results() {
        let build = |strategy: FanOutStrategy| {
            let mut engine = MultiStreamingEngine::with_threads(1_000, 4)
                .unwrap()
                .with_fan_out(strategy);
            for i in 0..PARALLEL_FAN_OUT_SUBS {
                // A handful of distinct profiles, repeated: realistic
                // portfolio shape and a stable group count.
                let delta = 1_000 - (i % 8) as Timestamp * 100;
                let q = match i % 3 {
                    0 => StreamingQuery::temporal(delta),
                    1 => StreamingQuery::temporal(delta).max_len(4),
                    _ => StreamingQuery::simple(delta).max_len(5),
                };
                engine.subscribe(q).unwrap();
            }
            engine
        };
        let mut naive = build(FanOutStrategy::Naive);
        let mut indexed = build(FanOutStrategy::Indexed);
        assert_eq!(indexed.subscription_index().num_subscriptions(), 64);
        assert!(indexed.subscription_index().num_groups() <= 24);

        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(0, 2, 4),
            e(2, 1, 5),
            e(1, 0, 6),
            e(2, 3, 7),
            e(3, 2, 8),
        ];
        let mut saw_parallel = false;
        for chunk in edges.chunks(4) {
            let rn = naive.ingest(chunk).unwrap();
            let ri = indexed.ingest(chunk).unwrap();
            if ri.candidates > 0 {
                assert!(ri.fan_out.parallel, "64 subs must defer to the pool");
                saw_parallel = true;
                assert!(ri.fan_out.checks < rn.fan_out.checks);
            }
            for (a, b) in rn.reports.iter().zip(&ri.reports) {
                assert_eq!(a.query, b.query);
                assert_eq!(a.cycles_found, b.cycles_found, "query {}", a.query);
            }
        }
        assert!(saw_parallel, "the stream must close cycles");
        // Deferred batches record per-cohort dispatch latency.
        let (key, _, _) = indexed
            .subscription_index()
            .summaries()
            .into_iter()
            .next()
            .unwrap();
        let latency = indexed
            .cohort_latency(&key)
            .expect("parallel batches recorded cohort latency");
        assert!(latency.count() > 0);
        assert!(
            naive.cohort_latency(&key).is_none(),
            "the naive loop has no cohort accounting"
        );
    }

    #[test]
    fn multi_granularities_agree_with_recorded_stats() {
        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(2, 3, 4),
            e(3, 2, 5),
            e(0, 2, 6),
            e(2, 1, 7),
            e(1, 0, 8),
        ];
        let mut reference: Option<Vec<u64>> = None;
        for granularity in [
            Granularity::Sequential,
            Granularity::CoarseGrained,
            Granularity::FineGrained,
        ] {
            let mut engine = MultiStreamingEngine::with_threads(1_000, 4)
                .unwrap()
                .with_granularity(granularity);
            let a = engine.subscribe(StreamingQuery::temporal(1_000)).unwrap();
            let b = engine.subscribe(StreamingQuery::simple(1_000)).unwrap();
            let mut per_batch = Vec::new();
            for chunk in edges.chunks(3) {
                let report = engine.ingest(chunk).unwrap();
                per_batch.push(report.report(a).unwrap().cycles_found);
                per_batch.push(report.report(b).unwrap().cycles_found);
                assert!(report.candidates >= report.report(a).unwrap().cycles_found);
            }
            match &reference {
                None => reference = Some(per_batch),
                Some(expected) => assert_eq!(&per_batch, expected, "{granularity:?}"),
            }
        }
    }

    #[test]
    fn subscription_snapshots_track_churn() {
        let mut engine = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        assert!(engine.subscription_snapshots().is_empty());

        let a = engine.subscribe(StreamingQuery::temporal(100)).unwrap();
        let b = engine.subscribe(StreamingQuery::simple(200)).unwrap();
        let c = engine
            .subscribe(StreamingQuery::simple(15).max_len(4))
            .unwrap();
        let snaps = engine.subscription_snapshots();
        assert_eq!(
            snaps.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![a, b, c]
        );
        assert!(snaps.iter().all(|s| s.total_cycles == 0));
        assert_eq!(snaps[1].query, StreamingQuery::simple(200));

        // A reported cycle shows up in the owning snapshot's lifetime total.
        engine.ingest(&[e(0, 1, 10), e(1, 2, 20)]).unwrap();
        engine.ingest(&[e(2, 0, 30)]).unwrap();
        let snaps = engine.subscription_snapshots();
        assert_eq!(snaps[0].total_cycles, 1, "temporal δ=100 sees the ring");
        assert_eq!(snaps[1].total_cycles, 1, "simple δ=200 sees the ring");
        assert_eq!(
            snaps[2].total_cycles, 0,
            "δ=15 is narrower than the 20-tick span"
        );

        // Unsubscribe drops the entry; ids of survivors are untouched; a
        // fresh subscribe never reuses the dropped id.
        assert!(engine.unsubscribe(b));
        let snaps = engine.subscription_snapshots();
        assert_eq!(snaps.iter().map(|s| s.id).collect::<Vec<_>>(), vec![a, c]);
        let d = engine.subscribe(StreamingQuery::temporal(300)).unwrap();
        assert!(d > c && d > b);
        let snaps = engine.subscription_snapshots();
        assert_eq!(snaps.last().unwrap().id, d);
        assert_eq!(snaps.last().unwrap().total_cycles, 0);
    }

    #[test]
    fn restore_subscription_rebuilds_registry_and_enforces_monotonicity() {
        // Build a registry with history, snapshot it, resurrect it on a
        // fresh engine, and check the restored engine reports identically.
        let mut original = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        let a = original.subscribe(StreamingQuery::temporal(100)).unwrap();
        original.subscribe(StreamingQuery::simple(200)).unwrap();
        let warmup = [e(0, 1, 10), e(1, 2, 20), e(2, 0, 30)];
        for chunk in warmup.chunks(2) {
            original.ingest(chunk).unwrap();
        }
        let snaps = original.subscription_snapshots();

        let mut restored = MultiStreamingEngine::with_threads(1_000, 1).unwrap();
        // Hydrate the window exactly as recovery does: ingest with no
        // subscriptions, then restore the registry and align the counter.
        for chunk in warmup.chunks(2) {
            restored.ingest(chunk).unwrap();
        }
        restored.resume_at_batch(original.batches());
        for snap in snaps {
            let id = restored.restore_subscription(snap).unwrap();
            assert_eq!(
                restored.total_cycles(id),
                original.total_cycles(id),
                "lifetime totals survive the round trip"
            );
        }
        assert_eq!(restored.batches(), original.batches());

        // Both engines see the same next batch identically.
        let next = [e(0, 2, 40), e(2, 1, 50), e(1, 0, 60)];
        let r_orig = original.ingest(&next).unwrap();
        let r_rest = restored.ingest(&next).unwrap();
        assert_eq!(r_orig.batch, r_rest.batch);
        for (o, r) in r_orig.reports.iter().zip(r_rest.reports.iter()) {
            assert_eq!(o.query, r.query);
            assert_eq!(o.cycles_found, r.cycles_found);
        }

        // New ids keep ascending past the restored registry.
        let fresh = restored.subscribe(StreamingQuery::temporal(10)).unwrap();
        assert!(fresh.as_u64() > a.as_u64() + 1);

        // Restoring below the issued-id floor is a typed error.
        let stale = SubscriptionSnapshot {
            id: QueryId::from_raw(1),
            query: StreamingQuery::temporal(10),
            total_cycles: 0,
        };
        assert!(matches!(
            restored.restore_subscription(stale),
            Err(StreamingError::RestoreIdCollision { .. })
        ));
        // Validation still applies to the query itself.
        let too_wide = SubscriptionSnapshot {
            id: QueryId::from_raw(10_000),
            query: StreamingQuery::temporal(5_000),
            total_cycles: 0,
        };
        assert!(matches!(
            restored.restore_subscription(too_wide),
            Err(StreamingError::RetentionTooSmall { .. })
        ));
    }
}
