//! The incremental sliding-window enumeration subsystem: continuous cycle
//! detection over a stream of temporal edge batches.
//!
//! [`StreamingEngine`] glues the three streaming pieces together:
//!
//! 1. **Ingest** — each [`StreamingEngine::ingest`] call appends one batch to
//!    an incrementally-maintained
//!    [`SlidingWindowGraph`](pce_graph::stream::SlidingWindowGraph) (`O(batch)`
//!    amortised, no rebuild) and slides the retention window forward,
//!    expiring edges older than `watermark - retention`.
//! 2. **Delta query** — only cycles *closed by the new batch* are enumerated:
//!    every cycle is rooted at its maximum `(timestamp, id)` edge, which lies
//!    in exactly one batch (see [`crate::delta`]). The batch's roots are
//!    processed at the standing query's [`Granularity`] on the engine's
//!    reusable thread pool: sequentially, as one dynamically-scheduled task
//!    per root (coarse), or as copyable recursion-level tasks stolen
//!    mid-search (fine — the right choice for skewed batches whose cycles
//!    hang off one hot root).
//! 3. **Resolution** — discovered cycles are resolved to concrete
//!    [`TemporalEdge`] sequences ([`StreamCycle`]) before returning, because
//!    dense edge ids are re-based when the window compacts.
//!
//! # The equivalence guarantee
//!
//! Over any replayed stream, each cycle is reported exactly once — at the
//! batch whose arrival completes it — and the reports are **independent of
//! how the stream is chopped into batches**: `window_delta <= retention`
//! (enforced at construction) guarantees that every edge a closing root can
//! need is still stored when it arrives, so a cycle spanning at most δ is
//! announced with its closing edge no matter the batch boundaries.
//! Consequently:
//!
//! * every cycle that lies fully inside the **final** window has been
//!   reported by some batch, and
//! * the union of per-batch delta results, restricted to cycles whose edges
//!   all survive in the final window, equals a one-shot enumeration of
//!   [`StreamingEngine::snapshot`]. With no expiry (retention spanning the
//!   whole stream) the union is exactly the one-shot result.
//!
//! `tests/streaming.rs` asserts this equivalence across seeds, batch sizes
//! (including batches that straddle window expiry), algorithms, delta
//! granularities and thread counts — byte-identical results for every
//! configuration.
//!
//! # Relation to [`Engine::stream`]
//!
//! [`Engine::stream`] pushes the results of **one** query to a consumer with
//! backpressure; `StreamingEngine` answers **many** incremental queries as
//! the *graph* changes. They compose: each batch's resolved cycles are
//! returned synchronously precisely so that a serving layer can forward them
//! into any transport — including a backpressured channel — without the
//! enumeration pipeline ever blocking on a slow consumer.

use crate::cycle::{CollectingSink, CountingSink};
use crate::delta::{
    delta_simple_fine_with_scratch, delta_simple_parallel_with_scratch, delta_simple_with_scratch,
    delta_temporal_fine_with_scratch, delta_temporal_parallel_with_scratch,
    delta_temporal_with_scratch,
};
use crate::engine::{CollectMode, CycleKind, Engine, EnumerationError, Granularity};
use crate::metrics::RunStats;
use crate::options::{SimpleCycleOptions, TemporalCycleOptions};
use crate::seq::RootScratch;
use pce_graph::stream::{SlidingWindowGraph, StreamError};
use pce_graph::{GraphView, TemporalEdge, TemporalGraph, TimeWindow, Timestamp, VertexId};
use std::time::Instant;

/// Errors produced by the streaming subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamingError {
    /// The ingest path rejected a batch (e.g. out-of-order timestamps); the
    /// graph is unchanged and the stream can continue with a corrected batch.
    Stream(StreamError),
    /// The streaming query failed validation (zero window, zero max length,
    /// or a combination with no implementation such as temporal self-loops).
    Query(EnumerationError),
    /// The query's time window is wider than the graph's retention span, so
    /// cycles could silently vanish before their closing edge arrives. Grow
    /// the retention or shrink the window.
    RetentionTooSmall {
        /// The requested enumeration window size δ.
        delta: Timestamp,
        /// The configured retention span.
        retention: Timestamp,
    },
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingError::Stream(e) => write!(f, "stream ingest error: {e}"),
            StreamingError::Query(e) => write!(f, "invalid streaming query: {e}"),
            StreamingError::RetentionTooSmall { delta, retention } => write!(
                f,
                "window delta {delta} exceeds retention {retention}: cycles would expire \
                 before their closing edge arrives"
            ),
        }
    }
}

impl std::error::Error for StreamingError {}

impl From<StreamError> for StreamingError {
    fn from(e: StreamError) -> Self {
        StreamingError::Stream(e)
    }
}

impl From<EnumerationError> for StreamingError {
    fn from(e: EnumerationError) -> Self {
        StreamingError::Query(e)
    }
}

/// The standing query a [`StreamingEngine`] evaluates against every batch:
/// cycle kind, window size and constraints. Plain data, like
/// [`Query`](crate::Query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingQuery {
    kind: CycleKind,
    granularity: Granularity,
    window_delta: Timestamp,
    max_len: Option<usize>,
    include_self_loops: bool,
    collect: CollectMode,
}

impl StreamingQuery {
    /// A window-constrained simple-cycle query: report cycles whose edge
    /// timestamps span at most `delta`, as they are closed by new batches.
    ///
    /// Defaults to [`Granularity::CoarseGrained`] parallelism — see
    /// [`StreamingQuery::granularity`] for when to pick fine-grained instead.
    pub fn simple(delta: Timestamp) -> Self {
        Self {
            kind: CycleKind::Simple,
            granularity: Granularity::CoarseGrained,
            window_delta: delta,
            max_len: None,
            include_self_loops: false,
            collect: CollectMode::Collect,
        }
    }

    /// A temporal-cycle query (strictly increasing timestamps) with window
    /// size `delta`.
    pub fn temporal(delta: Timestamp) -> Self {
        Self {
            kind: CycleKind::Temporal,
            ..Self::simple(delta)
        }
    }

    /// Selects how each batch's delta enumeration is split across the
    /// engine's workers, mirroring [`Query::granularity`](crate::Query):
    ///
    /// * [`Granularity::Sequential`] — one thread sweeps the batch's roots.
    /// * [`Granularity::CoarseGrained`] (the default) — one dynamically
    ///   scheduled task per closing root: the cheapest dispatch, ideal when a
    ///   batch closes many small, independent searches.
    /// * [`Granularity::FineGrained`] — every recursion level of a rooted
    ///   search is a stealable task: pick this when batches are *skewed* (a
    ///   hub vertex closes most of a batch's cycles through few roots), where
    ///   the coarse driver collapses to a single worker.
    ///
    /// With a single-threaded engine every granularity runs sequentially; the
    /// per-batch [`RunStats`] record what effectively executed.
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Constrains cycles to at most `len` edges (must be >= 1; validated when
    /// the engine is built). This is also the per-batch work cap: every
    /// driver — including the fine-grained one, which checks the bound before
    /// spawning a task — prunes extensions that can no longer close within
    /// `len` edges.
    pub fn max_len(mut self, len: usize) -> Self {
        self.max_len = Some(len);
        self
    }

    /// Also report length-1 cycles (self-loops). Only meaningful for
    /// simple-cycle queries: temporal cycles have strictly increasing
    /// timestamps, so a length-1 temporal cycle cannot exist and requesting
    /// the combination is rejected by [`StreamingQuery::validate`] (the seed
    /// API silently ignored the flag instead).
    pub fn include_self_loops(mut self, yes: bool) -> Self {
        self.include_self_loops = yes;
        self
    }

    /// Selects whether per-batch cycles are materialised
    /// ([`CollectMode::Collect`], the default — streaming callers usually
    /// want the alerts) or only counted ([`CollectMode::Count`]).
    pub fn collect(mut self, mode: CollectMode) -> Self {
        self.collect = mode;
        self
    }

    /// The cycle kind this query asks about.
    pub fn kind(&self) -> CycleKind {
        self.kind
    }

    /// The requested parallelisation granularity (what actually executes per
    /// batch may degrade to sequential — see [`StreamingQuery::granularity`]).
    pub fn requested_granularity(&self) -> Granularity {
        self.granularity
    }

    /// The enumeration window size δ.
    pub fn window_delta(&self) -> Timestamp {
        self.window_delta
    }

    /// Checks the query for values that can never return anything and for
    /// combinations that have no implementation, mirroring
    /// [`Query::validate`](crate::Query::validate). Called when the
    /// [`StreamingEngine`] is built, so an engine never holds an invalid
    /// standing query.
    pub fn validate(&self) -> Result<(), EnumerationError> {
        if self.window_delta < 1 {
            return Err(EnumerationError::InvalidWindow {
                delta: self.window_delta,
            });
        }
        if self.max_len == Some(0) {
            return Err(EnumerationError::InvalidMaxLen);
        }
        if self.kind == CycleKind::Temporal && self.include_self_loops {
            // Strictly increasing timestamps leave no room for a length-1
            // cycle; refuse instead of silently dropping the flag.
            return Err(EnumerationError::SelfLoopsUnsupported);
        }
        Ok(())
    }
}

/// A cycle reported by the streaming engine, resolved to concrete temporal
/// edges (dense ids are re-based when the sliding window compacts, so they
/// are not stable across batches — the edges themselves are).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamCycle {
    /// Vertices in traversal order (same convention as
    /// [`Cycle`](crate::Cycle)).
    pub vertices: Vec<VertexId>,
    /// The traversed edges: `edges[i]` connects `vertices[i]` to
    /// `vertices[i + 1]`, wrapping at the end.
    pub edges: Vec<TemporalEdge>,
}

impl StreamCycle {
    /// Number of edges (equivalently, vertices) in the cycle.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the cycle has no edges (never the case for cycles
    /// produced by the engine; paired with [`StreamCycle::len`]).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Rotates the cycle so that its lexicographically smallest
    /// `(ts, src, dst)` edge comes first. Two reports are the same cyclic
    /// edge sequence iff their canonical forms are equal — this is how the
    /// streaming-equivalence tests compare per-batch results (found under
    /// different edge ids) against one-shot results.
    pub fn canonicalize(&self) -> StreamCycle {
        let k = self.len();
        let key = |e: &TemporalEdge| (e.ts, e.src, e.dst);
        let min_pos = (0..k).min_by_key(|&i| key(&self.edges[i])).unwrap_or(0);
        StreamCycle {
            vertices: (0..k).map(|i| self.vertices[(min_pos + i) % k]).collect(),
            edges: (0..k).map(|i| self.edges[(min_pos + i) % k]).collect(),
        }
    }
}

/// What one [`StreamingEngine::ingest`] call produced.
#[derive(Debug)]
pub struct BatchReport {
    /// 0-based index of this batch in the stream.
    pub batch: u64,
    /// Edges appended by this batch.
    pub appended: usize,
    /// Edges that expired out of the window during this ingest.
    pub expired: usize,
    /// Edges inside the window after the ingest.
    pub live_edges: usize,
    /// The live window after the ingest.
    pub window: TimeWindow,
    /// Cycles closed by this batch (count; equals `cycles.len()` when the
    /// query materialises them).
    pub cycles_found: u64,
    /// The closed cycles, resolved to temporal edges (empty in
    /// [`CollectMode::Count`]).
    pub cycles: Vec<StreamCycle>,
    /// Wall-clock seconds spent appending + expiring.
    pub ingest_secs: f64,
    /// Wall-clock seconds spent in the delta enumeration.
    pub enumerate_secs: f64,
    /// Work statistics of the delta enumeration.
    pub stats: RunStats,
}

/// A long-lived incremental enumeration engine: owns the sliding-window graph
/// and one [`Engine`] (and therefore one reusable thread pool) and evaluates
/// its standing [`StreamingQuery`] against every ingested batch.
///
/// # Example
/// ```
/// use pce_core::streaming::{StreamingEngine, StreamingQuery};
/// use pce_core::graph::TemporalEdge;
///
/// let mut engine =
///     StreamingEngine::with_threads(1_000, StreamingQuery::temporal(100), 1).unwrap();
///
/// // The first two transfers open a path, the third closes the ring.
/// let quiet = engine
///     .ingest(&[TemporalEdge::new(0, 1, 10), TemporalEdge::new(1, 2, 20)])
///     .unwrap();
/// assert_eq!(quiet.cycles_found, 0);
///
/// let alert = engine.ingest(&[TemporalEdge::new(2, 0, 30)]).unwrap();
/// assert_eq!(alert.cycles_found, 1);
/// assert_eq!(alert.cycles[0].vertices.len(), 3);
/// ```
#[derive(Debug)]
pub struct StreamingEngine {
    engine: Engine,
    graph: SlidingWindowGraph,
    query: StreamingQuery,
    /// Reused across every delta run (epoch-stamped, grown as the vertex set
    /// grows) so ingests pay no per-batch allocation: one scratch for
    /// sequential runs, one per pool worker for parallel runs.
    scratches: Vec<RootScratch>,
    batches: u64,
    total_cycles: u64,
}

impl StreamingEngine {
    /// Creates a streaming engine sized to the machine. `retention` is the
    /// sliding-window span: edges expire once their timestamp drops below
    /// `watermark - retention`.
    pub fn new(retention: Timestamp, query: StreamingQuery) -> Result<Self, StreamingError> {
        Self::with_threads(retention, query, 0)
    }

    /// Creates a streaming engine with `threads` workers (0 = one per
    /// available core; 1 = strictly sequential delta queries, no pool).
    pub fn with_threads(
        retention: Timestamp,
        query: StreamingQuery,
        threads: usize,
    ) -> Result<Self, StreamingError> {
        query.validate()?;
        if query.window_delta > retention {
            return Err(StreamingError::RetentionTooSmall {
                delta: query.window_delta,
                retention,
            });
        }
        Ok(Self {
            engine: Engine::with_threads(threads),
            graph: SlidingWindowGraph::new(retention),
            query,
            scratches: Vec::new(),
            batches: 0,
            total_cycles: 0,
        })
    }

    /// Ingests one batch of edges (non-decreasing timestamps across batches;
    /// any order within a batch) and returns the cycles it closed.
    ///
    /// A rejected batch ([`StreamingError::Stream`]) leaves the graph — and
    /// the stream — fully intact.
    pub fn ingest(&mut self, batch: &[TemporalEdge]) -> Result<BatchReport, StreamingError> {
        let t0 = Instant::now();
        let delta = self.graph.append_batch(batch)?;
        let ingest_secs = t0.elapsed().as_secs_f64();

        // No floor: `window_delta <= retention` (enforced at construction)
        // guarantees that every edge a root's search can need — timestamps
        // in `[root_ts - δ : root_ts]` — is still physically stored when the
        // root arrives, because compaction only removes edges below the
        // *previous* batch's window start and `root_ts >= watermark` held at
        // append time. Reports are therefore independent of batch
        // boundaries: a cycle is announced exactly when its closing edge
        // arrives, no matter how the stream is chopped.
        let floor = Timestamp::MIN;
        let granularity = self.effective_granularity(delta.roots.len());
        let want = if granularity == Granularity::Sequential {
            1
        } else {
            self.engine.threads()
        };
        if self.scratches.len() < want {
            self.scratches.resize_with(want, || RootScratch::new(0));
        }
        for scratch in &mut self.scratches {
            scratch.ensure_vertices(self.graph.num_vertices());
        }
        let t1 = Instant::now();
        let (cycles, stats) = match self.query.collect {
            CollectMode::Collect => {
                let sink = CollectingSink::new();
                let stats = run_delta(
                    &self.query,
                    &self.engine,
                    &self.graph,
                    &mut self.scratches,
                    &sink,
                    delta.roots.clone(),
                    floor,
                    granularity,
                );
                let resolved = sink
                    .into_cycles()
                    .into_iter()
                    .map(|c| StreamCycle {
                        edges: c
                            .edges
                            .iter()
                            .map(|&id| GraphView::edge(&self.graph, id))
                            .collect(),
                        vertices: c.vertices,
                    })
                    .collect();
                (resolved, stats)
            }
            CollectMode::Count => {
                let sink = CountingSink::new();
                let stats = run_delta(
                    &self.query,
                    &self.engine,
                    &self.graph,
                    &mut self.scratches,
                    &sink,
                    delta.roots.clone(),
                    floor,
                    granularity,
                );
                (Vec::new(), stats)
            }
        };
        let enumerate_secs = t1.elapsed().as_secs_f64();

        let report = BatchReport {
            batch: self.batches,
            appended: delta.appended,
            expired: delta.expired,
            live_edges: self.graph.live_edges().len(),
            window: delta.window,
            cycles_found: stats.cycles,
            cycles,
            ingest_secs,
            enumerate_secs,
            stats,
        };
        self.batches += 1;
        self.total_cycles += report.cycles_found;
        Ok(report)
    }

    /// The sliding-window graph (for inspection: window, watermark, live
    /// edges, ingest totals).
    pub fn graph(&self) -> &SlidingWindowGraph {
        &self.graph
    }

    /// The standing query.
    pub fn query(&self) -> &StreamingQuery {
        &self.query
    }

    /// The inner [`Engine`] (and its reusable pool), e.g. to issue one-shot
    /// queries against a [`StreamingEngine::snapshot`] on the same pool.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total cycles reported across all batches.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Materialises the current window as an immutable [`TemporalGraph`] —
    /// the reference for the one-shot side of the equivalence guarantee (see
    /// the [module docs](self)).
    pub fn snapshot(&self) -> TemporalGraph {
        self.graph.snapshot()
    }

    /// The granularity one batch's delta run effectively executes at: the
    /// query's requested granularity, degraded to sequential when there is
    /// nothing to parallelise over. Coarse-grained degrades on single-root
    /// batches (one task per root cannot occupy a second worker); the
    /// fine-grained driver splits *within* a root, so a single hot root is
    /// exactly where it must stay parallel.
    fn effective_granularity(&self, batch_roots: usize) -> Granularity {
        if self.engine.threads() <= 1 || batch_roots == 0 {
            return Granularity::Sequential;
        }
        match self.query.granularity {
            Granularity::CoarseGrained if batch_roots <= 1 => Granularity::Sequential,
            requested => requested,
        }
    }
}

/// Dispatches one delta run (free function so the engine can lend out its
/// graph immutably and its scratches mutably at the same time). Sequential
/// runs reuse `scratches[0]`; parallel runs — coarse (one task per root) or
/// fine (stealable recursion-level tasks) — hand each pool worker its own
/// persistent scratch. No allocation on the hot path either way.
#[allow(clippy::too_many_arguments)] // private dispatcher over engine fields
fn run_delta<S: crate::cycle::CycleSink>(
    query: &StreamingQuery,
    engine: &Engine,
    graph: &SlidingWindowGraph,
    scratches: &mut [RootScratch],
    sink: &S,
    roots: std::ops::Range<pce_graph::EdgeId>,
    floor: Timestamp,
    granularity: Granularity,
) -> RunStats {
    match query.kind {
        CycleKind::Simple => {
            let opts = SimpleCycleOptions {
                window_delta: Some(query.window_delta),
                max_len: query.max_len,
                include_self_loops: query.include_self_loops,
            };
            match granularity {
                Granularity::Sequential => {
                    delta_simple_with_scratch(graph, roots, floor, &opts, sink, &mut scratches[0])
                }
                Granularity::CoarseGrained => delta_simple_parallel_with_scratch(
                    graph,
                    roots,
                    floor,
                    &opts,
                    sink,
                    engine.pool(),
                    scratches,
                ),
                Granularity::FineGrained => delta_simple_fine_with_scratch(
                    graph,
                    roots,
                    floor,
                    &opts,
                    sink,
                    engine.pool(),
                    scratches,
                ),
            }
        }
        CycleKind::Temporal => {
            let opts = TemporalCycleOptions {
                window_delta: query.window_delta,
                max_len: query.max_len,
            };
            match granularity {
                Granularity::Sequential => {
                    delta_temporal_with_scratch(graph, roots, floor, &opts, sink, &mut scratches[0])
                }
                Granularity::CoarseGrained => delta_temporal_parallel_with_scratch(
                    graph,
                    roots,
                    floor,
                    &opts,
                    sink,
                    engine.pool(),
                    scratches,
                ),
                Granularity::FineGrained => delta_temporal_fine_with_scratch(
                    graph,
                    roots,
                    floor,
                    &opts,
                    sink,
                    engine.pool(),
                    scratches,
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pce_graph::GraphBuilder;

    fn e(src: VertexId, dst: VertexId, ts: Timestamp) -> TemporalEdge {
        TemporalEdge::new(src, dst, ts)
    }

    #[test]
    fn construction_validates_query_and_retention() {
        assert!(matches!(
            StreamingEngine::new(100, StreamingQuery::simple(0)),
            Err(StreamingError::Query(EnumerationError::InvalidWindow {
                delta: 0
            }))
        ));
        assert!(matches!(
            StreamingEngine::new(100, StreamingQuery::temporal(10).max_len(0)),
            Err(StreamingError::Query(EnumerationError::InvalidMaxLen))
        ));
        assert!(matches!(
            StreamingEngine::new(10, StreamingQuery::temporal(50)),
            Err(StreamingError::RetentionTooSmall {
                delta: 50,
                retention: 10
            })
        ));
        assert!(StreamingEngine::new(50, StreamingQuery::temporal(50)).is_ok());
        // Temporal self-loops have no implementation; the combination is a
        // typed error instead of a silently ignored flag.
        assert!(matches!(
            StreamingEngine::new(100, StreamingQuery::temporal(10).include_self_loops(true)),
            Err(StreamingError::Query(
                EnumerationError::SelfLoopsUnsupported
            ))
        ));
        assert!(
            StreamingEngine::new(100, StreamingQuery::simple(10).include_self_loops(true)).is_ok()
        );
    }

    #[test]
    fn cycles_are_reported_at_the_closing_batch_only() {
        let mut eng =
            StreamingEngine::with_threads(1_000, StreamingQuery::simple(1_000), 1).unwrap();
        let r = eng.ingest(&[e(0, 1, 1), e(1, 2, 2)]).unwrap();
        assert_eq!(r.cycles_found, 0);
        let r = eng.ingest(&[e(2, 0, 3), e(3, 4, 3)]).unwrap();
        assert_eq!(r.cycles_found, 1);
        assert_eq!(r.cycles.len(), 1);
        let c = &r.cycles[0].canonicalize();
        assert_eq!(c.edges[0], e(0, 1, 1));
        assert_eq!(c.vertices.len(), 3);
        // Re-ingesting unrelated edges does not re-report the triangle.
        let r = eng.ingest(&[e(4, 3, 4)]).unwrap();
        assert_eq!(r.cycles_found, 1, "only the new 3↔4 cycle");
        assert_eq!(eng.total_cycles(), 2);
        assert_eq!(eng.batches(), 3);
    }

    #[test]
    fn reports_do_not_depend_on_batch_boundaries() {
        // Regression: the closing edge (2→0, t=100) used to be skipped when
        // a much newer edge in the *same* batch advanced the watermark (and
        // therefore the window floor) past it. With delta <= retention every
        // edge the root needs is still stored, so the ring must be reported
        // whether or not the batch also carries the newer edge.
        let one_batch = {
            let mut eng =
                StreamingEngine::with_threads(100, StreamingQuery::temporal(100), 1).unwrap();
            eng.ingest(&[e(0, 1, 1), e(1, 2, 50)]).unwrap();
            eng.ingest(&[e(2, 0, 100), e(8, 9, 250)])
                .unwrap()
                .cycles_found
        };
        let split = {
            let mut eng =
                StreamingEngine::with_threads(100, StreamingQuery::temporal(100), 1).unwrap();
            eng.ingest(&[e(0, 1, 1), e(1, 2, 50)]).unwrap();
            let n = eng.ingest(&[e(2, 0, 100)]).unwrap().cycles_found;
            n + eng.ingest(&[e(8, 9, 250)]).unwrap().cycles_found
        };
        assert_eq!(
            one_batch, 1,
            "ring closes even when its batch spans far ahead"
        );
        assert_eq!(one_batch, split);
    }

    #[test]
    fn expired_edges_no_longer_close_cycles() {
        let mut eng = StreamingEngine::with_threads(10, StreamingQuery::simple(10), 1).unwrap();
        eng.ingest(&[e(0, 1, 0)]).unwrap();
        // The closing edge arrives after 0→1 fell out of the window.
        let r = eng.ingest(&[e(1, 0, 50)]).unwrap();
        assert_eq!(r.expired, 1);
        assert_eq!(r.cycles_found, 0);
        // A fresh pair inside one window closes normally.
        let r = eng.ingest(&[e(0, 1, 55)]).unwrap();
        assert_eq!(r.cycles_found, 1);
    }

    #[test]
    fn out_of_order_batches_propagate_and_preserve_state() {
        let mut eng = StreamingEngine::with_threads(100, StreamingQuery::simple(100), 1).unwrap();
        eng.ingest(&[e(0, 1, 10)]).unwrap();
        let err = eng.ingest(&[e(1, 0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            StreamingError::Stream(StreamError::OutOfOrder { .. })
        ));
        // The stream keeps going; the corrected batch closes the cycle.
        let r = eng.ingest(&[e(1, 0, 15)]).unwrap();
        assert_eq!(r.cycles_found, 1);
    }

    #[test]
    fn count_mode_skips_materialisation() {
        let mut eng = StreamingEngine::with_threads(
            1_000,
            StreamingQuery::temporal(100).collect(CollectMode::Count),
            1,
        )
        .unwrap();
        eng.ingest(&[e(0, 1, 1), e(1, 2, 2)]).unwrap();
        let r = eng.ingest(&[e(2, 0, 3)]).unwrap();
        assert_eq!(r.cycles_found, 1);
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn union_of_batches_matches_one_shot_on_final_window() {
        // A small deterministic stream with no expiry: the union of per-batch
        // cycles must equal a one-shot run over the final snapshot. (The full
        // seeded sweep with expiry lives in tests/streaming.rs.)
        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(2, 3, 4),
            e(3, 2, 5),
            e(0, 2, 6),
            e(2, 1, 7),
            e(1, 0, 8),
        ];
        for batch_size in [1, 3, 8] {
            let mut eng =
                StreamingEngine::with_threads(1_000, StreamingQuery::temporal(1_000), 1).unwrap();
            let mut union: Vec<StreamCycle> = Vec::new();
            for chunk in edges.chunks(batch_size) {
                union.extend(eng.ingest(chunk).unwrap().cycles);
            }
            let snapshot = eng.snapshot();
            let one_shot = crate::Engine::with_threads(1)
                .run(
                    &crate::Query::temporal()
                        .window(1_000)
                        .collect(CollectMode::Collect),
                    &snapshot,
                )
                .unwrap();
            let mut union: Vec<StreamCycle> = union.iter().map(StreamCycle::canonicalize).collect();
            union.sort_by(|a, b| a.edges.cmp(&b.edges));
            let mut reference: Vec<StreamCycle> = one_shot
                .cycles
                .unwrap()
                .iter()
                .map(|c| {
                    StreamCycle {
                        vertices: c.vertices.clone(),
                        edges: c.edges.iter().map(|&id| snapshot.edge(id)).collect(),
                    }
                    .canonicalize()
                })
                .collect();
            reference.sort_by(|a, b| a.edges.cmp(&b.edges));
            assert_eq!(union, reference, "batch_size {batch_size}");
            assert!(!reference.is_empty());
        }
    }

    #[test]
    fn granularities_agree_and_are_recorded() {
        // Deterministic stream with a couple of overlapping rings; every
        // granularity must report the same cycles at the same batches.
        let edges = [
            e(0, 1, 1),
            e(1, 2, 2),
            e(2, 0, 3),
            e(2, 3, 4),
            e(3, 2, 5),
            e(0, 2, 6),
            e(2, 1, 7),
            e(1, 0, 8),
        ];
        let mut reference: Option<Vec<u64>> = None;
        for granularity in [
            Granularity::Sequential,
            Granularity::CoarseGrained,
            Granularity::FineGrained,
        ] {
            let mut eng = StreamingEngine::with_threads(
                1_000,
                StreamingQuery::temporal(1_000).granularity(granularity),
                4,
            )
            .unwrap();
            assert_eq!(eng.query().requested_granularity(), granularity);
            let mut per_batch = Vec::new();
            for chunk in edges.chunks(3) {
                let report = eng.ingest(chunk).unwrap();
                per_batch.push(report.cycles_found);
                if granularity == Granularity::FineGrained && !chunk.is_empty() {
                    assert_eq!(
                        report.stats.granularity,
                        Some(Granularity::FineGrained),
                        "fine runs must be tagged as such"
                    );
                }
            }
            match &reference {
                None => reference = Some(per_batch),
                Some(expected) => assert_eq!(&per_batch, expected, "{granularity:?}"),
            }
        }
    }

    #[test]
    fn single_threaded_engine_degrades_every_granularity_to_sequential() {
        let mut eng = StreamingEngine::with_threads(
            1_000,
            StreamingQuery::simple(1_000).granularity(Granularity::FineGrained),
            1,
        )
        .unwrap();
        eng.ingest(&[e(0, 1, 1)]).unwrap();
        let report = eng.ingest(&[e(1, 0, 2)]).unwrap();
        assert_eq!(report.cycles_found, 1);
        assert_eq!(report.stats.granularity, Some(Granularity::Sequential));
        assert_eq!(report.stats.threads, 1);
    }

    #[test]
    fn stream_cycle_canonicalisation_is_rotation_invariant() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 1)
            .add_edge(1, 2, 2)
            .add_edge(2, 0, 3)
            .build();
        let a = StreamCycle {
            vertices: vec![1, 2, 0],
            edges: vec![g.edge(1), g.edge(2), g.edge(0)],
        };
        let b = StreamCycle {
            vertices: vec![0, 1, 2],
            edges: vec![g.edge(0), g.edge(1), g.edge(2)],
        };
        assert_eq!(a.canonicalize(), b.canonicalize());
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }
}
