//! Sequential enumeration algorithms: Tiernan (brute force), Johnson,
//! Read-Tarjan and the temporal-cycle DFS (the 2SCENT-style baseline).
//!
//! Every algorithm is organised around *rooted searches*: the graph's edges
//! are processed in ascending `(timestamp, id)` order, and the search rooted
//! at edge `e = v0 → v1` enumerates exactly the cycles whose minimum edge is
//! `e` (all other edges must come strictly after `e` and lie within the time
//! window anchored at `e`). Processing every edge therefore enumerates every
//! cycle exactly once — sequentially here, and in parallel (one task per root,
//! or finer) in [`crate::par`].

pub mod johnson;
pub mod read_tarjan;
pub mod temporal;
pub mod tiernan;

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::SimpleCycleOptions;
use pce_graph::{EdgeId, TemporalGraph};
use std::time::Instant;

/// A per-worker scratch area reused across rooted searches: the cycle-union
/// workspace plus the path/blocked buffers. Each sequential run owns one;
/// parallel runs own one per worker.
#[derive(Debug)]
pub struct RootScratch {
    /// Cycle-union / reachability workspace (epoch-stamped, reused per root).
    pub union: pce_graph::reach::CycleUnionWorkspace,
}

impl RootScratch {
    /// Creates scratch buffers for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            union: pce_graph::reach::CycleUnionWorkspace::new(n),
        }
    }

    /// Grows the scratch to cover `n` vertices (no-op when already large
    /// enough). Lets long-lived owners — the streaming engine keeps one
    /// scratch across every ingest — track a growing vertex set without
    /// reallocating per run.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.union.ensure_vertices(n);
    }
}

/// Handles a self-loop root edge: reports it if the options allow self-loops.
/// Returns `true` if the edge was a self-loop (and therefore fully handled).
pub(crate) fn handle_self_loop_root<S: CycleSink>(
    graph: &TemporalGraph,
    root: EdgeId,
    opts: &SimpleCycleOptions,
    sink: &HaltingSink<'_, S>,
) -> bool {
    let e = graph.edge(root);
    if e.src != e.dst {
        return false;
    }
    if opts.include_self_loops && opts.len_ok(1) {
        sink.push(&[e.src], &[root]);
    }
    true
}

/// Convenience used by the public entry points: time `body`, then assemble
/// [`RunStats`] from the sink and metrics.
pub(crate) fn timed_run<S: CycleSink>(
    sink: &HaltingSink<'_, S>,
    metrics: &WorkMetrics,
    threads: usize,
    body: impl FnOnce(),
) -> RunStats {
    let start = Instant::now();
    body();
    RunStats {
        cycles: sink.count(),
        wall_secs: start.elapsed().as_secs_f64(),
        work: metrics.snapshot(),
        threads,
        ..RunStats::default()
    }
}
