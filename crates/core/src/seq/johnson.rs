//! The Johnson algorithm (§3.4): simple-cycle enumeration with blocked
//! vertices, unblock lists and recursive unblocking.
//!
//! A vertex is *blocked* when it is visited; after backtracking it stays
//! blocked unless a cycle was found in its subtree, in which case it (and,
//! transitively, everything recorded in its unblock list `Blist`) is
//! unblocked. This delayed unblocking is what bounds the work per discovered
//! cycle to `O(n+e)` and gives the overall `O((n+e)(c+1))` complexity.
//!
//! This module contains the sequential implementation; the coarse-grained
//! parallel version simply runs `johnson_root` for different root edges on
//! different workers, and the fine-grained version (in
//! [`crate::par::fine_johnson`]) re-implements the same recursion with
//! explicit frames so that unexplored branches can be stolen.
//!
//! When a maximum cycle length is configured, delayed blocking would be
//! unsound (a vertex may fail only because the remaining length budget was
//! too small), so the search transparently falls back to a pruned DFS that
//! relies on the cycle-union and on-path checks only.

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::SimpleCycleOptions;
use crate::seq::{handle_self_loop_root, timed_run, RootScratch};
use crate::union::UnionQuery;
use crate::util::{fx_map, fx_set, FxHashMap, FxHashSet};
use crate::{Algorithm, Granularity};
use pce_graph::{EdgeId, TemporalGraph, TimeWindow, VertexId};

/// The per-root Johnson search state. Exposed (crate-internally) because the
/// coarse-grained driver reuses it directly.
struct JohnsonSearch<'a, S> {
    graph: &'a TemporalGraph,
    sink: &'a HaltingSink<'a, S>,
    metrics: &'a WorkMetrics,
    worker: usize,
    opts: &'a SimpleCycleOptions,
    union: &'a dyn UnionQuery,
    root: EdgeId,
    v0: VertexId,
    window: TimeWindow,
    /// Delayed blocking is only sound without a length constraint.
    use_blocking: bool,
    path: Vec<VertexId>,
    path_edges: Vec<EdgeId>,
    on_path: FxHashSet<VertexId>,
    blocked: FxHashSet<VertexId>,
    blist: FxHashMap<VertexId, FxHashSet<VertexId>>,
}

impl<S: CycleSink> JohnsonSearch<'_, S> {
    /// The recursive `CIRCUIT(v)` procedure. Returns `true` if at least one
    /// cycle was found in the subtree rooted at `v`.
    fn circuit(&mut self, v: VertexId) -> bool {
        self.metrics.recursive_call(self.worker);
        let mut found = false;
        let graph = self.graph;
        for &entry in graph.out_edges_in_window(v, self.window) {
            if self.sink.stopped() {
                return found;
            }
            if entry.edge <= self.root {
                continue;
            }
            self.metrics.edge_visit(self.worker);
            let w = entry.neighbor;
            if w == self.v0 {
                if self.opts.len_ok(self.path_edges.len() + 1) {
                    self.path_edges.push(entry.edge);
                    self.sink.push(&self.path, &self.path_edges);
                    self.path_edges.pop();
                    found = true;
                }
                continue;
            }
            if !self.union.in_union(w) || self.on_path.contains(&w) {
                continue;
            }
            if self.use_blocking && self.blocked.contains(&w) {
                continue;
            }
            if !self.opts.len_ok(self.path_edges.len() + 2) {
                continue;
            }
            self.path.push(w);
            self.path_edges.push(entry.edge);
            self.on_path.insert(w);
            if self.use_blocking {
                self.blocked.insert(w);
            }
            if self.circuit(w) {
                found = true;
            }
            self.on_path.remove(&w);
            self.path_edges.pop();
            self.path.pop();
        }
        if self.use_blocking {
            if found {
                self.unblock(v);
            } else {
                // Delayed unblocking: v will be unblocked when any of its
                // admissible successors is unblocked.
                for &entry in graph.out_edges_in_window(v, self.window) {
                    if entry.edge <= self.root || !self.union.in_union(entry.neighbor) {
                        continue;
                    }
                    self.blist.entry(entry.neighbor).or_default().insert(v);
                }
            }
        }
        found
    }

    /// The recursive unblocking procedure.
    fn unblock(&mut self, v: VertexId) {
        if !self.blocked.remove(&v) {
            return;
        }
        self.metrics.unblock_op(self.worker);
        if let Some(list) = self.blist.remove(&v) {
            for u in list {
                self.unblock(u);
            }
        }
    }
}

/// Runs the Johnson search rooted at edge `root`: enumerates every cycle whose
/// minimum `(timestamp, id)` edge is `root` and whose edges all lie within the
/// window `[ts(root) : ts(root) + δ]`.
pub(crate) fn johnson_root<S: CycleSink>(
    graph: &TemporalGraph,
    root: EdgeId,
    opts: &SimpleCycleOptions,
    scratch: &mut RootScratch,
    sink: &HaltingSink<'_, S>,
    metrics: &WorkMetrics,
    worker: usize,
) {
    if handle_self_loop_root(graph, root, opts, sink) {
        return;
    }
    metrics.root_processed(worker);
    let e0 = graph.edge(root);
    let window = TimeWindow::from_start(e0.ts, opts.effective_delta());
    // Cycle-union preprocessing: skip roots that cannot close any cycle and
    // restrict the search to vertices on at least one cycle through the root.
    if !scratch.union.compute_simple(graph, root, window) {
        return;
    }
    let mut on_path = fx_set();
    on_path.insert(e0.src);
    on_path.insert(e0.dst);
    let mut blocked = fx_set();
    blocked.insert(e0.src);
    blocked.insert(e0.dst);
    let mut search = JohnsonSearch {
        graph,
        sink,
        metrics,
        worker,
        opts,
        union: &scratch.union,
        root,
        v0: e0.src,
        window,
        use_blocking: opts.max_len.is_none(),
        path: vec![e0.src, e0.dst],
        path_edges: vec![root],
        on_path,
        blocked,
        blist: fx_map(),
    };
    search.circuit(e0.dst);
}

/// Sequential Johnson enumeration of all (window-constrained) simple cycles.
pub fn johnson_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
) -> RunStats {
    let metrics = WorkMetrics::new(1);
    let sink = HaltingSink::new(sink);
    timed_run(&sink, &metrics, 1, || {
        let mut scratch = RootScratch::new(graph.num_vertices());
        for root in 0..graph.num_edges() as EdgeId {
            if sink.stopped() {
                break;
            }
            johnson_root(graph, root, opts, &mut scratch, &sink, &metrics, 0);
        }
    })
    .tagged(Algorithm::Johnson, Granularity::Sequential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use crate::seq::tiernan::tiernan_simple;
    use pce_graph::generators::{self, RandomTemporalConfig};
    use pce_graph::GraphBuilder;

    #[test]
    fn triangle_and_path() {
        let g = generators::directed_cycle(5);
        let sink = CountingSink::new();
        johnson_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 1);

        let p = generators::directed_path(6);
        let sink = CountingSink::new();
        johnson_simple(&p, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn fig4a_counts_match_closed_form() {
        for n in 2..=10 {
            let g = generators::fig4a_exponential_cycles(n);
            let sink = CountingSink::new();
            johnson_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
            assert_eq!(sink.count(), generators::fig4a_cycle_count(n));
        }
    }

    #[test]
    fn fig5a_and_fig3a_gadgets() {
        let g = generators::fig5a_infeasible_regions(8);
        let sink = CountingSink::new();
        johnson_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), generators::FIG5A_CYCLE_COUNT);

        // Figure 3a: cycles are v0→v1→v0 and v0→v1→v2→v0.
        let g = generators::fig3a_pruning_gadget(4, 5);
        let sink = CountingSink::new();
        johnson_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn johnson_visits_fewer_edges_than_tiernan_on_fig3a() {
        let g = generators::fig3a_pruning_gadget(6, 12);
        let opts = SimpleCycleOptions::unconstrained();
        let sink_j = CountingSink::new();
        let stats_j = johnson_simple(&g, &opts, &sink_j);
        let sink_t = CountingSink::new();
        let stats_t = tiernan_simple(&g, &opts, &sink_t);
        assert_eq!(sink_j.count(), sink_t.count());
        assert!(
            stats_j.work.total_edge_visits() < stats_t.work.total_edge_visits(),
            "johnson {} visits should be below tiernan {}",
            stats_j.work.total_edge_visits(),
            stats_t.work.total_edge_visits()
        );
    }

    #[test]
    fn matches_tiernan_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::uniform_temporal(RandomTemporalConfig {
                num_vertices: 14,
                num_edges: 50,
                time_span: 40,
                seed,
            });
            for delta in [5, 20, i64::MAX] {
                let opts = if delta == i64::MAX {
                    SimpleCycleOptions::unconstrained()
                } else {
                    SimpleCycleOptions::with_window(delta)
                };
                let sink_j = CollectingSink::new();
                johnson_simple(&g, &opts, &sink_j);
                let sink_t = CollectingSink::new();
                tiernan_simple(&g, &opts, &sink_t);
                assert_eq!(
                    sink_j.canonical_cycles(),
                    sink_t.canonical_cycles(),
                    "seed {seed} delta {delta}"
                );
            }
        }
    }

    #[test]
    fn window_constraint_is_respected() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 0)
            .add_edge(1, 2, 50)
            .add_edge(2, 0, 100)
            .add_edge(1, 0, 10)
            .build();
        let sink = CollectingSink::new();
        johnson_simple(&g, &SimpleCycleOptions::with_window(20), &sink);
        let cycles = sink.canonical_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
        for c in &cycles {
            assert!(c.validate(&g).is_ok());
            assert!(c.time_span(&g) <= 20);
        }
    }

    #[test]
    fn max_len_matches_tiernan() {
        let g = generators::complete_digraph(5);
        for max_len in 2..=5 {
            let opts = SimpleCycleOptions::unconstrained().max_len(max_len);
            let sink_j = CountingSink::new();
            johnson_simple(&g, &opts, &sink_j);
            let sink_t = CountingSink::new();
            tiernan_simple(&g, &opts, &sink_t);
            assert_eq!(sink_j.count(), sink_t.count(), "max_len={max_len}");
        }
    }

    #[test]
    fn parallel_edge_cycles_counted_separately() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 0)
            .add_edge(1, 2, 1)
            .add_edge(1, 2, 2)
            .add_edge(2, 0, 3)
            .build();
        let sink = CountingSink::new();
        johnson_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn reported_cycles_are_simple_and_valid() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 20,
            num_edges: 80,
            time_span: 60,
            seed: 99,
        });
        let sink = CollectingSink::new();
        johnson_simple(&g, &SimpleCycleOptions::with_window(18), &sink);
        for c in sink.canonical_cycles() {
            c.validate(&g).expect("cycle must be valid");
            assert!(c.time_span(&g) <= 18);
        }
    }

    #[test]
    fn self_loop_handling() {
        let g = GraphBuilder::new()
            .add_edge(3, 3, 5)
            .add_edge(0, 1, 1)
            .add_edge(1, 0, 2)
            .build();
        let sink = CountingSink::new();
        johnson_simple(
            &g,
            &SimpleCycleOptions::unconstrained().include_self_loops(true),
            &sink,
        );
        assert_eq!(sink.count(), 2);
    }
}
