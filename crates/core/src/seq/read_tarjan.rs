//! The Read-Tarjan algorithm (§3.4): simple-cycle enumeration driven by
//! *path extensions*.
//!
//! A recursive call owns a current path `Π` (from `v0` to a frontier vertex)
//! together with one already-discovered *path extension* `Π_E` — a simple path
//! from the frontier back to `v0` that is vertex-disjoint from `Π`. The call
//! is responsible for enumerating **every** cycle that has `Π` as a prefix.
//! It walks along `Π_E`; before committing each extension vertex it probes,
//! with a depth-first search, every other admissible edge leaving the current
//! frontier:
//!
//! * a probe that reaches `v0` directly closes a cycle, which is reported
//!   immediately;
//! * a probe that finds a longer extension spawns a **child call** whose path
//!   is the current path plus that first probe edge — the child becomes
//!   responsible for every cycle with that longer prefix;
//! * a probe that fails marks every vertex it visited as *blocked* for the
//!   remainder of this call (none of them can reach `v0` while avoiding the
//!   current path, and the path only grows).
//!
//! When the walk finally commits the last extension edge, `Π · Π_E` itself is
//! reported. Partitioning responsibility by "first edge where the cycle
//! deviates from the witness extension" makes every cycle reported exactly
//! once, and because each call reports at least the cycle `Π · Π_E`, the
//! number of calls is at most the number of cycles `c`. A call performs
//! `O(n + e)` work (failed probes are amortised by the blocked set; each
//! successful probe is charged to the child it spawns), giving the same
//! `O((n+e)(c+1))` bound as Johnson.
//!
//! Crucially, and unlike Johnson, calls only pass information *down* (each
//! child receives copies of `Π` and `Blk`), never back up — which is what
//! makes the fine-grained parallelisation of §6 work efficient: child calls
//! are completely independent tasks.

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::SimpleCycleOptions;
use crate::seq::{handle_self_loop_root, timed_run, RootScratch};
use crate::union::UnionQuery;
use crate::util::{fx_set, FxHashSet};
use crate::{Algorithm, Granularity};
use pce_graph::{AdjEntry, EdgeId, TemporalGraph, TimeWindow, VertexId};

/// A path extension: a sequence of `(edge, target-vertex)` steps leading from
/// the current frontier back to the root vertex `v0`. The final step always
/// targets `v0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Extension {
    /// `(edge, vertex)` steps in order; the last vertex is always `v0`.
    pub steps: Vec<(EdgeId, VertexId)>,
}

/// The state a Read-Tarjan recursive call owns. Parallel drivers ship this
/// across threads, so it is a plain owned value.
#[derive(Debug, Clone)]
pub(crate) struct RtCallState {
    /// Current path vertices (starting with `v0`).
    pub path: Vec<VertexId>,
    /// Edges of the current path (one fewer than `path`... exactly
    /// `path.len() - 1` entries, the root edge first).
    pub path_edges: Vec<EdgeId>,
    /// Membership set for `path`.
    pub on_path: FxHashSet<VertexId>,
    /// The witness extension to walk.
    pub extension: Extension,
    /// Vertices that provably cannot reach `v0` while avoiding the current
    /// path; private to this call (copied, never merged back).
    pub blocked: FxHashSet<VertexId>,
}

/// Immutable per-root context shared by all recursive calls of one rooted
/// Read-Tarjan search.
pub(crate) struct RtContext<'a, S> {
    pub graph: &'a TemporalGraph,
    pub sink: &'a HaltingSink<'a, S>,
    pub metrics: &'a WorkMetrics,
    pub opts: &'a SimpleCycleOptions,
    pub union: &'a dyn UnionQuery,
    pub root: EdgeId,
    pub v0: VertexId,
    pub window: TimeWindow,
}

impl<S: CycleSink> RtContext<'_, S> {
    /// Is `entry` an admissible edge for this rooted search?
    #[inline]
    pub(crate) fn admissible(&self, entry: &AdjEntry) -> bool {
        entry.edge > self.root
            && entry.ts <= self.window.end
            && (entry.neighbor == self.v0 || self.union.in_union(entry.neighbor))
    }

    /// Depth-first search for a path extension that starts with the edge
    /// `start_edge → start_vertex` (leaving the current frontier) and ends at
    /// `v0`, avoiding `on_path` and `blocked`.
    ///
    /// `budget` bounds the number of edges the extension may use (`None` =
    /// unbounded). On complete failure every vertex visited by the DFS is
    /// added to `blocked`.
    pub(crate) fn find_extension(
        &self,
        worker: usize,
        start_edge: EdgeId,
        start_vertex: VertexId,
        on_path: &FxHashSet<VertexId>,
        blocked: &mut FxHashSet<VertexId>,
        budget: Option<usize>,
    ) -> Option<Extension> {
        if let Some(b) = budget {
            if b == 0 {
                return None;
            }
        }
        self.metrics.edge_visit(worker);
        if start_vertex == self.v0 {
            return Some(Extension {
                steps: vec![(start_edge, start_vertex)],
            });
        }
        if on_path.contains(&start_vertex)
            || blocked.contains(&start_vertex)
            || !self.union.in_union(start_vertex)
        {
            return None;
        }
        if let Some(b) = budget {
            if b < 2 {
                return None;
            }
        }

        // Iterative DFS; each stack frame records the vertex, the edge used to
        // enter it and the index of the next outgoing edge to try.
        let mut stack: Vec<(VertexId, EdgeId, usize)> = vec![(start_vertex, start_edge, 0)];
        let mut visited: FxHashSet<VertexId> = fx_set();
        visited.insert(start_vertex);

        loop {
            if self.sink.stopped() {
                break;
            }
            let Some(&(v, _, next_idx)) = stack.last() else {
                break;
            };
            let out = self.graph.out_edges_in_window(v, self.window);
            if next_idx >= out.len() {
                stack.pop();
                continue;
            }
            stack.last_mut().expect("frame just read").2 += 1;
            let entry = out[next_idx];
            if !self.admissible(&entry) {
                continue;
            }
            self.metrics.edge_visit(worker);
            let w = entry.neighbor;
            if w == self.v0 {
                if let Some(b) = budget {
                    if stack.len() + 1 > b {
                        continue;
                    }
                }
                let mut steps: Vec<(EdgeId, VertexId)> =
                    stack.iter().map(|&(sv, se, _)| (se, sv)).collect();
                steps.push((entry.edge, self.v0));
                return Some(Extension { steps });
            }
            if visited.contains(&w) || on_path.contains(&w) || blocked.contains(&w) {
                continue;
            }
            if let Some(b) = budget {
                if stack.len() + 2 > b {
                    continue;
                }
            }
            visited.insert(w);
            stack.push((w, entry.edge, 0));
        }

        // Complete failure: nothing visited can reach v0 while avoiding the
        // current path, now or later in this call (the avoided sets only
        // grow), so block it all.
        for v in visited {
            blocked.insert(v);
        }
        None
    }
}

/// One recursive Read-Tarjan call. Cycles are reported to the context's sink;
/// every child call produced is handed to `spawn_child` (which the sequential
/// driver executes by direct recursion and the fine-grained parallel driver
/// turns into an independently scheduled task).
pub(crate) fn rt_call<S: CycleSink>(
    ctx: &RtContext<'_, S>,
    worker: usize,
    mut state: RtCallState,
    spawn_child: &mut impl FnMut(RtCallState),
) {
    ctx.metrics.recursive_call(worker);

    for step_idx in 0..state.extension.steps.len() {
        if ctx.sink.stopped() {
            return;
        }
        let (ext_edge, ext_vertex) = state.extension.steps[step_idx];
        let frontier = *state.path.last().expect("path never empty");

        // Probe every other admissible edge leaving the frontier: each one is
        // the first edge of a prefix this call is responsible for but will not
        // walk itself.
        for &entry in ctx.graph.out_edges_in_window(frontier, ctx.window) {
            if ctx.sink.stopped() {
                return;
            }
            if entry.edge == ext_edge || !ctx.admissible(&entry) {
                continue;
            }
            ctx.metrics.edge_visit(worker);
            let budget = ctx
                .opts
                .max_len
                .map(|m| m.saturating_sub(state.path_edges.len()));
            if budget == Some(0) {
                break;
            }
            let Some(alt) = ctx.find_extension(
                worker,
                entry.edge,
                entry.neighbor,
                &state.on_path,
                &mut state.blocked,
                budget,
            ) else {
                continue;
            };
            if alt.steps.len() == 1 {
                // The probe edge closes a cycle directly; no other cycle can
                // have this exact prefix, so report it here.
                if ctx.opts.len_ok(state.path_edges.len() + 1) {
                    state.path_edges.push(entry.edge);
                    ctx.sink.push(&state.path, &state.path_edges);
                    state.path_edges.pop();
                }
            } else {
                // Spawn a child responsible for every cycle whose prefix is
                // the current path extended by this probe edge. The child
                // receives copies of the path and of the blocked set.
                ctx.metrics.copy_event(worker);
                let (first_edge, first_vertex) = alt.steps[0];
                let mut child_path = state.path.clone();
                let mut child_edges = state.path_edges.clone();
                let mut child_on_path = state.on_path.clone();
                child_path.push(first_vertex);
                child_edges.push(first_edge);
                child_on_path.insert(first_vertex);
                spawn_child(RtCallState {
                    path: child_path,
                    path_edges: child_edges,
                    on_path: child_on_path,
                    extension: Extension {
                        steps: alt.steps[1..].to_vec(),
                    },
                    blocked: state.blocked.clone(),
                });
            }
        }

        // Commit the next step of the witness extension.
        state.path_edges.push(ext_edge);
        if ext_vertex == ctx.v0 {
            debug_assert_eq!(step_idx, state.extension.steps.len() - 1);
            if ctx.opts.len_ok(state.path_edges.len()) {
                ctx.sink.push(&state.path, &state.path_edges);
            }
        } else {
            state.path.push(ext_vertex);
            state.on_path.insert(ext_vertex);
        }
    }
}

/// Builds the initial call state for the search rooted at `root`, or `None`
/// when no cycle passes through the root edge. Shared by the sequential and
/// parallel drivers.
pub(crate) fn rt_initial_state<S: CycleSink>(
    ctx: &RtContext<'_, S>,
    worker: usize,
    root: EdgeId,
) -> Option<RtCallState> {
    let e0 = ctx.graph.edge(root);
    let mut on_path = fx_set();
    on_path.insert(e0.src);
    on_path.insert(e0.dst);
    let mut blocked = fx_set();
    let mut first: Option<Extension> = None;
    for &entry in ctx.graph.out_edges_in_window(e0.dst, ctx.window) {
        if !ctx.admissible(&entry) {
            continue;
        }
        ctx.metrics.edge_visit(worker);
        let budget = ctx.opts.max_len.map(|m| m.saturating_sub(1));
        if let Some(ext) = ctx.find_extension(
            worker,
            entry.edge,
            entry.neighbor,
            &on_path,
            &mut blocked,
            budget,
        ) {
            first = Some(ext);
            break;
        }
    }
    first.map(|extension| RtCallState {
        path: vec![e0.src, e0.dst],
        path_edges: vec![root],
        on_path,
        extension,
        blocked,
    })
}

/// Runs the Read-Tarjan search rooted at edge `root` sequentially (children
/// are executed by direct recursion on the same thread).
pub(crate) fn read_tarjan_root<S: CycleSink>(
    graph: &TemporalGraph,
    root: EdgeId,
    opts: &SimpleCycleOptions,
    scratch: &mut RootScratch,
    sink: &HaltingSink<'_, S>,
    metrics: &WorkMetrics,
    worker: usize,
) {
    if handle_self_loop_root(graph, root, opts, sink) {
        return;
    }
    metrics.root_processed(worker);
    let e0 = graph.edge(root);
    let window = TimeWindow::from_start(e0.ts, opts.effective_delta());
    if !scratch.union.compute_simple(graph, root, window) {
        return;
    }
    let ctx = RtContext {
        graph,
        sink,
        metrics,
        opts,
        union: &scratch.union,
        root,
        v0: e0.src,
        window,
    };
    let Some(initial) = rt_initial_state(&ctx, worker, root) else {
        return;
    };
    run_call_recursive(&ctx, worker, initial);
}

/// Executes an `rt_call` and every child it spawns by direct recursion (the
/// sequential execution strategy).
fn run_call_recursive<S: CycleSink>(ctx: &RtContext<'_, S>, worker: usize, state: RtCallState) {
    let mut pending: Vec<RtCallState> = vec![state];
    // Children are executed depth-first from an explicit stack so that deeply
    // nested spawn chains cannot overflow the call stack.
    while let Some(next) = pending.pop() {
        if ctx.sink.stopped() {
            return;
        }
        rt_call(ctx, worker, next, &mut |child| pending.push(child));
    }
}

/// Sequential Read-Tarjan enumeration of all (window-constrained) simple
/// cycles.
pub fn read_tarjan_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
) -> RunStats {
    let metrics = WorkMetrics::new(1);
    let sink = HaltingSink::new(sink);
    timed_run(&sink, &metrics, 1, || {
        let mut scratch = RootScratch::new(graph.num_vertices());
        for root in 0..graph.num_edges() as EdgeId {
            if sink.stopped() {
                break;
            }
            read_tarjan_root(graph, root, opts, &mut scratch, &sink, &metrics, 0);
        }
    })
    .tagged(Algorithm::ReadTarjan, Granularity::Sequential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use crate::seq::johnson::johnson_simple;
    use crate::seq::tiernan::tiernan_simple;
    use pce_graph::generators::{self, RandomTemporalConfig};
    use pce_graph::GraphBuilder;

    #[test]
    fn basic_shapes() {
        let g = generators::directed_cycle(4);
        let sink = CountingSink::new();
        read_tarjan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 1);

        let p = generators::directed_path(5);
        let sink = CountingSink::new();
        read_tarjan_simple(&p, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn fig4a_counts_match_closed_form() {
        for n in 2..=10 {
            let g = generators::fig4a_exponential_cycles(n);
            let sink = CountingSink::new();
            read_tarjan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
            assert_eq!(
                sink.count(),
                generators::fig4a_cycle_count(n),
                "fig4a n={n}"
            );
        }
    }

    #[test]
    fn fig5a_and_fig3a_gadgets() {
        let g = generators::fig5a_infeasible_regions(7);
        let sink = CountingSink::new();
        read_tarjan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), generators::FIG5A_CYCLE_COUNT);

        let g = generators::fig3a_pruning_gadget(5, 6);
        let sink = CountingSink::new();
        read_tarjan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn complete_digraphs_match_johnson() {
        for n in 2..=5 {
            let g = generators::complete_digraph(n);
            let opts = SimpleCycleOptions::unconstrained();
            let sink_rt = CollectingSink::new();
            read_tarjan_simple(&g, &opts, &sink_rt);
            let sink_j = CollectingSink::new();
            johnson_simple(&g, &opts, &sink_j);
            assert_eq!(
                sink_rt.canonical_cycles(),
                sink_j.canonical_cycles(),
                "complete digraph n={n}"
            );
        }
    }

    #[test]
    fn matches_johnson_and_tiernan_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::uniform_temporal(RandomTemporalConfig {
                num_vertices: 12,
                num_edges: 45,
                time_span: 30,
                seed: 100 + seed,
            });
            for delta in [8, 25, i64::MAX] {
                let opts = if delta == i64::MAX {
                    SimpleCycleOptions::unconstrained()
                } else {
                    SimpleCycleOptions::with_window(delta)
                };
                let rt = CollectingSink::new();
                read_tarjan_simple(&g, &opts, &rt);
                let j = CollectingSink::new();
                johnson_simple(&g, &opts, &j);
                let t = CollectingSink::new();
                tiernan_simple(&g, &opts, &t);
                let rt_c = rt.canonical_cycles();
                assert_eq!(rt_c, j.canonical_cycles(), "seed {seed} delta {delta}");
                assert_eq!(rt_c, t.canonical_cycles(), "seed {seed} delta {delta}");
            }
        }
    }

    #[test]
    fn power_law_graph_agreement() {
        let g = generators::power_law_temporal(RandomTemporalConfig {
            num_vertices: 40,
            num_edges: 150,
            time_span: 100,
            seed: 77,
        });
        let opts = SimpleCycleOptions::with_window(15);
        let rt = CollectingSink::new();
        read_tarjan_simple(&g, &opts, &rt);
        let j = CollectingSink::new();
        johnson_simple(&g, &opts, &j);
        assert_eq!(rt.canonical_cycles(), j.canonical_cycles());
    }

    #[test]
    fn max_len_constraint_matches_johnson() {
        let g = generators::complete_digraph(5);
        for max_len in 2..=5 {
            let opts = SimpleCycleOptions::unconstrained().max_len(max_len);
            let rt = CountingSink::new();
            read_tarjan_simple(&g, &opts, &rt);
            let j = CountingSink::new();
            johnson_simple(&g, &opts, &j);
            assert_eq!(rt.count(), j.count(), "max_len={max_len}");
        }
    }

    #[test]
    fn window_constraint_respected() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 0)
            .add_edge(1, 2, 5)
            .add_edge(2, 0, 9)
            .add_edge(1, 0, 100)
            .build();
        let sink = CollectingSink::new();
        read_tarjan_simple(&g, &SimpleCycleOptions::with_window(10), &sink);
        let cycles = sink.canonical_cycles();
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].validate(&g).is_ok());
    }

    #[test]
    fn recursive_call_count_is_bounded_by_cycle_count() {
        // Work efficiency sanity check (Theorem 6.1): every call reports at
        // least one cycle, so the number of calls never exceeds the number of
        // cycles.
        let g = generators::fig4a_exponential_cycles(9);
        let sink = CountingSink::new();
        let stats = read_tarjan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert!(stats.work.total_recursive_calls() <= sink.count());
        assert!(sink.count() > 0);
    }
}
