//! Temporal-cycle enumeration (§7): cycles whose edges appear in strictly
//! increasing timestamp order within a time window.
//!
//! The search rooted at edge `e0 = v0 → v1` (timestamp `t0`) enumerates every
//! temporal cycle whose first — and therefore strictly smallest — edge is
//! `e0` and whose edges all lie in `[t0 : t0 + δ]`. Because the first edge of
//! a temporal cycle is unique, enumerating from every root edge yields every
//! temporal cycle exactly once.
//!
//! Two prunings keep the search tight, mirroring the design of §7 of the
//! paper:
//!
//! 1. **Cycle-union preprocessing**: only vertices that are temporally
//!    reachable from `v1` *and* can temporally reach `v0` within the window
//!    are ever visited ([`pce_graph::reach::CycleUnionWorkspace`]).
//! 2. **Closing times**: the same backward pass computes, for every vertex
//!    `w`, the latest timestamp at which a temporal path can still leave `w`
//!    towards `v0`; arriving later than that is pruned immediately. This is a
//!    static, per-root form of 2SCENT's closing-time pruning: it ignores the
//!    simple-path constraint, so it can never prune a real cycle, and unlike
//!    2SCENT's sequential preprocessing it parallelises trivially across
//!    roots.
//!
//! [`two_scent_baseline`] packages the same rooted search behind a strictly
//! sequential, timestamp-ordered driver and stands in for the serial 2SCENT
//! implementation that Figure 9 of the paper compares against.

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::TemporalCycleOptions;
use crate::seq::{timed_run, RootScratch};
use crate::union::UnionQuery;
use crate::util::{fx_set, FxHashSet};
use crate::{Algorithm, Granularity};
use pce_graph::{EdgeId, TemporalGraph, TimeWindow, Timestamp, VertexId};

struct TemporalSearch<'a, S> {
    graph: &'a TemporalGraph,
    sink: &'a HaltingSink<'a, S>,
    metrics: &'a WorkMetrics,
    worker: usize,
    opts: &'a TemporalCycleOptions,
    union: &'a dyn UnionQuery,
    v0: VertexId,
    t_end: Timestamp,
    path: Vec<VertexId>,
    path_edges: Vec<EdgeId>,
    on_path: FxHashSet<VertexId>,
}

impl<S: CycleSink> TemporalSearch<'_, S> {
    /// Depth-first extension of the current temporal path; `arrival` is the
    /// timestamp of the last edge on the path, so the next edge must be
    /// strictly later.
    fn extend(&mut self, v: VertexId, arrival: Timestamp) {
        self.metrics.recursive_call(self.worker);
        let graph = self.graph;
        let window = TimeWindow::new(arrival.saturating_add(1), self.t_end);
        for &entry in graph.out_edges_in_window(v, window) {
            if self.sink.stopped() {
                return;
            }
            self.metrics.edge_visit(self.worker);
            let w = entry.neighbor;
            if w == self.v0 {
                if self.opts.len_ok(self.path_edges.len() + 1) {
                    self.path_edges.push(entry.edge);
                    self.sink.push(&self.path, &self.path_edges);
                    self.path_edges.pop();
                }
                continue;
            }
            if self.on_path.contains(&w)
                || !self.union.in_union(w)
                || !self.union.can_close_after(w, entry.ts)
                || !self.opts.len_ok(self.path_edges.len() + 2)
            {
                continue;
            }
            self.path.push(w);
            self.path_edges.push(entry.edge);
            self.on_path.insert(w);
            self.extend(w, entry.ts);
            self.on_path.remove(&w);
            self.path_edges.pop();
            self.path.pop();
        }
    }
}

/// Runs the temporal search rooted at edge `root`.
pub(crate) fn temporal_root<S: CycleSink>(
    graph: &TemporalGraph,
    root: EdgeId,
    opts: &TemporalCycleOptions,
    scratch: &mut RootScratch,
    sink: &HaltingSink<'_, S>,
    metrics: &WorkMetrics,
    worker: usize,
) {
    let e0 = graph.edge(root);
    if e0.src == e0.dst {
        // Self-loops are degenerate temporal cycles of length 1 and are not
        // reported, matching the simple-cycle default.
        return;
    }
    metrics.root_processed(worker);
    if !scratch
        .union
        .compute_temporal(graph, root, opts.window_delta)
    {
        return;
    }
    let mut on_path = fx_set();
    on_path.insert(e0.src);
    on_path.insert(e0.dst);
    let mut search = TemporalSearch {
        graph,
        sink,
        metrics,
        worker,
        opts,
        union: &scratch.union,
        v0: e0.src,
        t_end: e0.ts.saturating_add(opts.window_delta),
        path: vec![e0.src, e0.dst],
        path_edges: vec![root],
        on_path,
    };
    search.extend(e0.dst, e0.ts);
}

/// Sequential temporal-cycle enumeration using the scalable per-root
/// preprocessing of §7.
pub fn temporal_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &TemporalCycleOptions,
    sink: &S,
) -> RunStats {
    let metrics = WorkMetrics::new(1);
    let sink = HaltingSink::new(sink);
    timed_run(&sink, &metrics, 1, || {
        let mut scratch = RootScratch::new(graph.num_vertices());
        for root in 0..graph.num_edges() as EdgeId {
            if sink.stopped() {
                break;
            }
            temporal_root(graph, root, opts, &mut scratch, &sink, &metrics, 0);
        }
    })
    .tagged(Algorithm::Johnson, Granularity::Sequential)
}

/// The 2SCENT-style serial baseline of Kumar and Calders used as the
/// reference point of the paper's Figure 9.
///
/// Algorithmically it performs the same rooted temporal searches with
/// closing-time pruning, but the driver is strictly sequential: root edges are
/// processed one by one in ascending timestamp order and the reachability
/// preprocessing for root *i+1* is only started after the search for root *i*
/// finished — exactly the dependency structure that makes the original
/// 2SCENT preprocessing impossible to parallelise and motivates the paper's
/// replacement preprocessing.
pub fn two_scent_baseline<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &TemporalCycleOptions,
    sink: &S,
) -> RunStats {
    let metrics = WorkMetrics::new(1);
    let sink = HaltingSink::new(sink);
    timed_run(&sink, &metrics, 1, || {
        let mut scratch = RootScratch::new(graph.num_vertices());
        // Root edges are already stored in ascending (timestamp, id) order, so
        // iterating ids ascending is the timestamp-ordered sweep of 2SCENT.
        for root in 0..graph.num_edges() as EdgeId {
            if sink.stopped() {
                break;
            }
            temporal_root(graph, root, opts, &mut scratch, &sink, &metrics, 0);
        }
    })
    .tagged(Algorithm::Johnson, Granularity::Sequential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use pce_graph::generators::{self, RandomTemporalConfig, TransactionRingConfig};
    use pce_graph::GraphBuilder;

    // The brute-force oracle that used to live here moved to the shared
    // differential-test module; see `crate::testing::oracle_temporal`.
    use crate::testing::oracle_temporal;

    #[test]
    fn directed_cycle_is_a_temporal_cycle() {
        let g = generators::directed_cycle(5);
        let sink = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(100), &sink);
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn non_increasing_timestamps_are_rejected() {
        // Triangle with timestamps (1, 3, 2) in traversal order: no rotation
        // of the cycle has strictly increasing timestamps, so it is a simple
        // cycle but not a temporal one.
        let g = GraphBuilder::new()
            .add_edge(0, 1, 1)
            .add_edge(1, 2, 3)
            .add_edge(2, 0, 2)
            .build();
        let sink = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(100), &sink);
        assert_eq!(sink.count(), 0);

        // A 2-cycle with distinct timestamps, by contrast, can always be
        // rooted at its earlier edge and is therefore temporal.
        let g = GraphBuilder::new()
            .add_edge(0, 1, 5)
            .add_edge(1, 0, 3)
            .build();
        let sink = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(100), &sink);
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn window_constraint_limits_cycles() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 0)
            .add_edge(1, 2, 10)
            .add_edge(2, 0, 20)
            .build();
        let tight = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(15), &tight);
        assert_eq!(tight.count(), 0);
        let wide = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(20), &wide);
        assert_eq!(wide.count(), 1);
    }

    #[test]
    fn equal_timestamps_do_not_chain() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 5)
            .add_edge(1, 2, 5)
            .add_edge(2, 0, 6)
            .build();
        let sink = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(100), &sink);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::uniform_temporal(RandomTemporalConfig {
                num_vertices: 12,
                num_edges: 60,
                time_span: 40,
                seed: 500 + seed,
            });
            for delta in [10, 25, 60] {
                let sink = CollectingSink::new();
                temporal_simple(&g, &TemporalCycleOptions::with_window(delta), &sink);
                let expected = oracle_temporal(&g, delta);
                assert_eq!(
                    sink.canonical_cycles(),
                    expected,
                    "seed {seed} delta {delta}"
                );
            }
        }
    }

    #[test]
    fn reported_cycles_are_temporal_and_within_window() {
        let g = generators::power_law_temporal(RandomTemporalConfig {
            num_vertices: 60,
            num_edges: 300,
            time_span: 200,
            seed: 9,
        });
        let delta = 80;
        let sink = CollectingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(delta), &sink);
        for c in sink.canonical_cycles() {
            c.validate(&g).expect("valid cycle");
            assert!(c.is_temporal(&g), "timestamps must strictly increase");
            assert!(c.time_span(&g) <= delta);
        }
    }

    #[test]
    fn planted_transaction_rings_are_found() {
        let cfg = TransactionRingConfig {
            num_accounts: 200,
            background_edges: 400,
            num_rings: 8,
            ring_len: (3, 5),
            time_span: 1_000_000,
            ring_span: 2_000,
            seed: 21,
        };
        let (g, planted) = generators::transaction_rings(cfg);
        let sink = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(cfg.ring_span), &sink);
        assert!(
            sink.count() >= planted as u64,
            "expected at least {planted} planted rings, found {}",
            sink.count()
        );
    }

    #[test]
    fn max_len_constraint() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 1)
            .add_edge(1, 0, 2)
            .add_edge(1, 2, 3)
            .add_edge(2, 0, 4)
            .build();
        let all = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(100), &all);
        assert_eq!(all.count(), 2);
        let short = CountingSink::new();
        temporal_simple(
            &g,
            &TemporalCycleOptions::with_window(100).max_len(2),
            &short,
        );
        assert_eq!(short.count(), 1);
    }

    #[test]
    fn baseline_matches_scalable_sequential() {
        let g = generators::uniform_temporal(RandomTemporalConfig {
            num_vertices: 25,
            num_edges: 150,
            time_span: 80,
            seed: 4242,
        });
        let opts = TemporalCycleOptions::with_window(30);
        let a = CollectingSink::new();
        temporal_simple(&g, &opts, &a);
        let b = CollectingSink::new();
        two_scent_baseline(&g, &opts, &b);
        assert_eq!(a.canonical_cycles(), b.canonical_cycles());
    }

    #[test]
    fn parallel_temporal_edges_counted_separately() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 1)
            .add_edge(1, 0, 5)
            .add_edge(1, 0, 7)
            .build();
        let sink = CountingSink::new();
        temporal_simple(&g, &TemporalCycleOptions::with_window(100), &sink);
        assert_eq!(sink.count(), 2);
    }
}
