//! The Tiernan algorithm: brute-force simple-cycle enumeration (§3.4).
//!
//! Tiernan extends a simple path by any admissible edge whose head is not yet
//! on the path, with no memory of previously failed explorations. It explores
//! every maximal simple path of the graph, so its worst-case complexity is
//! `O(s·(n+e))` where `s` can be exponentially larger than the number of
//! cycles `c`. It is included as the lower baseline of the paper's Table 2
//! discussion and because the naïve parallelisation of Johnson degenerates to
//! it (§5, "the naïve approach").

use crate::cycle::{CycleSink, HaltingSink};
use crate::metrics::{RunStats, WorkMetrics};
use crate::options::SimpleCycleOptions;
use crate::seq::{handle_self_loop_root, timed_run};
use crate::util::{fx_set, FxHashSet};
use crate::{Algorithm, Granularity};
use pce_graph::{EdgeId, TemporalGraph, TimeWindow, VertexId};

struct TiernanSearch<'a, S> {
    graph: &'a TemporalGraph,
    sink: &'a HaltingSink<'a, S>,
    metrics: &'a WorkMetrics,
    worker: usize,
    opts: &'a SimpleCycleOptions,
    root: EdgeId,
    v0: VertexId,
    window: TimeWindow,
    path: Vec<VertexId>,
    path_edges: Vec<EdgeId>,
    on_path: FxHashSet<VertexId>,
}

impl<S: CycleSink> TiernanSearch<'_, S> {
    fn extend(&mut self, v: VertexId) {
        for entry in self.graph.out_edges_in_window(v, self.window) {
            if self.sink.stopped() {
                return;
            }
            if entry.edge <= self.root {
                continue;
            }
            self.metrics.edge_visit(self.worker);
            let w = entry.neighbor;
            if w == self.v0 {
                if self.opts.len_ok(self.path_edges.len() + 1) {
                    self.path_edges.push(entry.edge);
                    self.sink.push(&self.path, &self.path_edges);
                    self.path_edges.pop();
                }
            } else if !self.on_path.contains(&w) && self.opts.len_ok(self.path_edges.len() + 2) {
                self.path.push(w);
                self.path_edges.push(entry.edge);
                self.on_path.insert(w);
                self.extend(w);
                self.on_path.remove(&w);
                self.path_edges.pop();
                self.path.pop();
            }
        }
    }
}

/// Runs the Tiernan search rooted at edge `root`: enumerates every cycle whose
/// minimum `(timestamp, id)` edge is `root` and whose edges all lie within the
/// window `[ts(root) : ts(root) + δ]`.
pub(crate) fn tiernan_root<S: CycleSink>(
    graph: &TemporalGraph,
    root: EdgeId,
    opts: &SimpleCycleOptions,
    sink: &HaltingSink<'_, S>,
    metrics: &WorkMetrics,
    worker: usize,
) {
    if handle_self_loop_root(graph, root, opts, sink) {
        return;
    }
    metrics.recursive_call(worker);
    metrics.root_processed(worker);
    let e0 = graph.edge(root);
    let window = TimeWindow::from_start(e0.ts, opts.effective_delta());
    let mut on_path = fx_set();
    on_path.insert(e0.src);
    on_path.insert(e0.dst);
    let mut search = TiernanSearch {
        graph,
        sink,
        metrics,
        worker,
        opts,
        root,
        v0: e0.src,
        window,
        path: vec![e0.src, e0.dst],
        path_edges: vec![root],
        on_path,
    };
    search.extend(e0.dst);
}

/// Sequential Tiernan enumeration of all (window-constrained) simple cycles.
pub fn tiernan_simple<S: CycleSink>(
    graph: &TemporalGraph,
    opts: &SimpleCycleOptions,
    sink: &S,
) -> RunStats {
    let metrics = WorkMetrics::new(1);
    let sink = HaltingSink::new(sink);
    timed_run(&sink, &metrics, 1, || {
        for root in 0..graph.num_edges() as EdgeId {
            if sink.stopped() {
                break;
            }
            tiernan_root(graph, root, opts, &sink, &metrics, 0);
        }
    })
    .tagged(Algorithm::Tiernan, Granularity::Sequential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{CollectingSink, CountingSink};
    use pce_graph::generators;
    use pce_graph::GraphBuilder;

    #[test]
    fn triangle_has_one_cycle() {
        let g = generators::directed_cycle(3);
        let sink = CountingSink::new();
        let stats = tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(stats.cycles, 1);
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let g = generators::directed_path(10);
        let sink = CountingSink::new();
        let stats = tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn fig4a_counts_match_closed_form() {
        for n in 2..=8 {
            let g = generators::fig4a_exponential_cycles(n);
            let sink = CountingSink::new();
            tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
            assert_eq!(
                sink.count(),
                generators::fig4a_cycle_count(n),
                "fig4a with n={n}"
            );
        }
    }

    #[test]
    fn fig5a_has_exactly_four_cycles() {
        let g = generators::fig5a_infeasible_regions(6);
        let sink = CountingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), generators::FIG5A_CYCLE_COUNT);
    }

    #[test]
    fn complete_digraph_cycle_count() {
        // K4 (directed, both directions) has 6 + 8 + 6 = 20 simple cycles of
        // lengths 2, 3, 4 respectively.
        let g = generators::complete_digraph(4);
        let sink = CountingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert_eq!(sink.count(), 20);
    }

    #[test]
    fn reported_cycles_are_valid_and_window_bounded() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 0)
            .add_edge(1, 2, 5)
            .add_edge(2, 0, 9)
            .add_edge(1, 0, 100)
            .build();
        let sink = CollectingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::with_window(10), &sink);
        let cycles = sink.canonical_cycles();
        // Only the 0->1->2->0 triangle fits in a window of 10; the 2-cycle
        // 0->1->0 spans 100.
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
        assert!(cycles[0].validate(&g).is_ok());
        assert!(cycles[0].time_span(&g) <= 10);

        let sink_wide = CountingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::with_window(1000), &sink_wide);
        assert_eq!(sink_wide.count(), 2);
    }

    #[test]
    fn parallel_edges_produce_distinct_cycles() {
        let g = GraphBuilder::new()
            .add_edge(0, 1, 0)
            .add_edge(0, 1, 1)
            .add_edge(1, 0, 2)
            .add_edge(1, 0, 3)
            .build();
        let sink = CountingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        // Each (0->1 edge, 1->0 edge) pair is a distinct cycle: 2 * 2 = 4.
        assert_eq!(sink.count(), 4);
    }

    #[test]
    fn max_len_constraint_filters_long_cycles() {
        let g = generators::complete_digraph(4);
        let sink = CountingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::unconstrained().max_len(2), &sink);
        // Only the 6 two-cycles qualify.
        assert_eq!(sink.count(), 6);
        let sink3 = CountingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::unconstrained().max_len(3), &sink3);
        assert_eq!(sink3.count(), 14);
    }

    #[test]
    fn self_loops_are_reported_only_when_requested() {
        let g = GraphBuilder::new()
            .add_edge(0, 0, 1)
            .add_edge(0, 1, 2)
            .add_edge(1, 0, 3)
            .build();
        let without = CountingSink::new();
        tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &without);
        assert_eq!(without.count(), 1);
        let with = CountingSink::new();
        tiernan_simple(
            &g,
            &SimpleCycleOptions::unconstrained().include_self_loops(true),
            &with,
        );
        assert_eq!(with.count(), 2);
    }

    #[test]
    fn work_metrics_are_recorded() {
        let g = generators::complete_digraph(4);
        let sink = CountingSink::new();
        let stats = tiernan_simple(&g, &SimpleCycleOptions::unconstrained(), &sink);
        assert!(stats.work.total_edge_visits() > 0);
        assert_eq!(stats.work.total_roots(), g.num_edges() as u64);
        assert_eq!(stats.threads, 1);
    }
}
