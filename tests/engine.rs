//! Integration tests for the `Engine` API: pool reuse, early termination
//! (`first_k`), streaming, and error paths for invalid queries.

use parallel_cycle_enumeration::prelude::*;
use std::sync::Arc;

/// `first_k` returns exactly `k` cycles and stops doing work: on the Figure
/// 4a gadget (2^(n-2) cycles behind one root edge) the truncated run must
/// visit far fewer edges than the full enumeration.
#[test]
fn first_k_returns_exactly_k_and_stops_early() {
    let graph = generators::fig4a_exponential_cycles(14);
    let total = generators::fig4a_cycle_count(14);
    let engine = Engine::with_threads(1);
    let query = Query::simple().granularity(Granularity::Sequential);

    let full = engine.run(&query, &graph).unwrap();
    assert_eq!(full.stats.cycles, total);
    let full_visits = full.stats.work.total_edge_visits();

    let k = 4;
    let truncated = engine.first_k(k, &query, &graph).unwrap();
    let cycles = truncated.cycles.unwrap();
    assert_eq!(cycles.len(), k, "exactly k cycles");
    assert_eq!(truncated.stats.cycles, k as u64);
    for cycle in &cycles {
        cycle.validate(&graph).expect("streamed cycles are valid");
    }
    let truncated_visits = truncated.stats.work.total_edge_visits();
    assert!(
        truncated_visits * 4 < full_visits,
        "early termination must skip most of the work: {truncated_visits} vs {full_visits}"
    );
    assert!(
        truncated.stats.work.total_recursive_calls() < full.stats.work.total_recursive_calls(),
        "early termination must skip recursive calls too"
    );
}

/// Early termination also holds across every parallel configuration, and the
/// pool survives to serve the next (full) query.
#[test]
fn first_k_is_exact_under_parallel_execution() {
    let graph = generators::fig4a_exponential_cycles(12);
    let total = generators::fig4a_cycle_count(12);
    let engine = Engine::with_threads(4);
    for granularity in [Granularity::CoarseGrained, Granularity::FineGrained] {
        for algorithm in [Algorithm::Johnson, Algorithm::ReadTarjan] {
            let query = Query::simple()
                .algorithm(algorithm)
                .granularity(granularity);
            let result = engine.first_k(7, &query, &graph).unwrap();
            assert_eq!(
                result.cycles.unwrap().len(),
                7,
                "{algorithm:?}/{granularity:?}"
            );
            // The engine's pool is not deadlocked: a full run still works.
            assert_eq!(engine.count(&query, &graph).unwrap(), total);
        }
    }
}

/// Repeated runs on one engine (one pool) agree with fresh-pool runs through
/// the legacy per-call front end.
#[test]
fn engine_reuse_matches_fresh_pool_runs() {
    let graph = generators::power_law_temporal(generators::RandomTemporalConfig {
        num_vertices: 40,
        num_edges: 180,
        time_span: 90,
        seed: 17,
    });
    let engine = Engine::with_threads(3);
    let query = Query::simple().window(25);
    let first = engine.count(&query, &graph).unwrap();
    let second = engine.count(&query, &graph).unwrap();
    assert_eq!(first, second, "reused pool must not change results");
    let fresh = CycleEnumerator::new()
        .granularity(Granularity::FineGrained)
        .threads(3)
        .window(25)
        .count_simple(&graph);
    assert_eq!(
        first, fresh,
        "engine must agree with the fresh-pool wrapper"
    );

    // Mixed kinds over the same engine.
    let temporal = engine.count(&Query::temporal().window(25), &graph).unwrap();
    let temporal_fresh = CycleEnumerator::new()
        .threads(3)
        .window(25)
        .count_temporal(&graph);
    assert_eq!(temporal, temporal_fresh);
    assert!(temporal <= first, "temporal cycles are a subset");
}

/// Invalid queries are rejected with typed errors instead of running a
/// different configuration or panicking mid-run.
#[test]
fn invalid_queries_are_rejected() {
    let graph = generators::directed_cycle(4);
    let engine = Engine::with_threads(2);

    let err = engine
        .count(&Query::simple().window(0), &graph)
        .unwrap_err();
    assert_eq!(err, EnumerationError::InvalidWindow { delta: 0 });

    let err = engine
        .count(&Query::temporal().window(-3), &graph)
        .unwrap_err();
    assert_eq!(err, EnumerationError::InvalidWindow { delta: -3 });

    let err = engine
        .count(&Query::simple().max_len(0), &graph)
        .unwrap_err();
    assert_eq!(err, EnumerationError::InvalidMaxLen);

    let err = engine
        .count(
            &Query::simple()
                .algorithm(Algorithm::Tiernan)
                .granularity(Granularity::FineGrained),
            &graph,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        EnumerationError::UnsupportedCombination { .. }
    ));

    let err = engine
        .run(&Query::temporal().algorithm(Algorithm::Tiernan), &graph)
        .unwrap_err();
    assert!(matches!(
        err,
        EnumerationError::UnsupportedCombination { .. }
    ));

    // Streams validate up front too — no thread is spawned for a bad query.
    let err = engine
        .stream(&Query::simple().window(0), Arc::new(graph))
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err, EnumerationError::InvalidWindow { delta: 0 });
}

/// A fully drained stream yields every cycle the counting run reports.
#[test]
fn stream_drains_completely() {
    let graph = Arc::new(generators::fig4a_exponential_cycles(10));
    let engine = Engine::with_threads(2);
    let query = Query::simple();
    let expected = engine.count(&query, &graph).unwrap();

    let stream = engine.stream(&query, Arc::clone(&graph)).unwrap();
    let cycles: Vec<Cycle> = stream.collect();
    assert_eq!(cycles.len() as u64, expected);
    for cycle in &cycles {
        cycle.validate(&graph).expect("streamed cycles are valid");
    }
}

/// Dropping a stream mid-way cancels the enumeration without deadlocking the
/// pool; the engine serves subsequent queries normally.
#[test]
fn dropping_a_stream_early_cancels_without_deadlock() {
    // Big enough that the producer cannot finish before the drop: ~2.6e5
    // cycles against a 1024-slot channel buffer.
    let graph = Arc::new(generators::fig4a_exponential_cycles(20));
    let engine = Engine::with_threads(4);
    let query = Query::simple();

    let mut stream = engine.stream(&query, Arc::clone(&graph)).unwrap();
    let mut taken = Vec::new();
    for _ in 0..10 {
        taken.push(stream.next().expect("enumeration yields plenty"));
    }
    let stats = stream.finish();
    assert!(
        stats.cycles < generators::fig4a_cycle_count(20),
        "run must have been truncated, got {} cycles",
        stats.cycles
    );
    for cycle in &taken {
        cycle.validate(&graph).expect("streamed cycles are valid");
    }

    // The pool is idle again: a small full query on the same engine works.
    let small = generators::directed_cycle(5);
    assert_eq!(engine.count(&query, &small).unwrap(), 1);
}

/// An undrained, backpressured stream must not starve the engine's own pool:
/// a blocking query issued on the same engine while the stream's channel is
/// full still completes (streams run on their own dedicated pool).
#[test]
fn engine_stays_serviceable_while_a_stream_is_backpressured() {
    // ~2.6e5 cycles against a 1024-slot buffer: the stream's producers are
    // guaranteed to be parked on channel sends while we query.
    let graph = Arc::new(generators::fig4a_exponential_cycles(20));
    let engine = Engine::with_threads(2);
    let query = Query::simple();

    let mut stream = engine.stream(&query, Arc::clone(&graph)).unwrap();
    // Pull one cycle so the producer is definitely up and filling the buffer.
    assert!(stream.next().is_some());

    // This would deadlock permanently if the stream occupied the engine pool.
    let small = generators::directed_cycle(6);
    assert_eq!(engine.count(&query, &small).unwrap(), 1);

    drop(stream);
    assert_eq!(engine.count(&query, &small).unwrap(), 1);
}

/// `run_with_sink` exposes the statically-dispatched sink extension point:
/// a custom sink sees every cycle and can stop the run.
#[test]
fn run_with_sink_supports_custom_sinks() {
    let graph = generators::fig4a_exponential_cycles(10);
    let engine = Engine::with_threads(2);
    let sink = FirstKSink::new(3);
    let stats = engine
        .run_with_sink(&Query::simple(), &graph, &sink)
        .unwrap();
    assert_eq!(stats.cycles, 3);
    assert_eq!(sink.into_cycles().len(), 3);
}

/// Collection mode on the query controls materialisation through `run`.
#[test]
fn collect_mode_controls_materialisation() {
    let graph = generators::complete_digraph(4);
    let engine = Engine::with_threads(2);
    let counted = engine.run(&Query::simple(), &graph).unwrap();
    assert!(counted.cycles.is_none());
    assert_eq!(counted.stats.cycles, 20);
    let collected = engine
        .run(&Query::simple().collect(CollectMode::Collect), &graph)
        .unwrap();
    assert_eq!(collected.cycles.unwrap().len(), 20);
}
