//! Streaming-equivalence integration tests: the union of per-batch delta
//! results over a replayed stream must equal a one-shot enumeration of the
//! final window — for simple and temporal cycles, across seeds, batch sizes
//! (including batches that straddle window expiry), one-shot
//! algorithm/granularity combinations, streaming delta granularities and
//! streaming thread counts. The predicate sweep extends the fan-out harness
//! with attribute-filtered subscriptions: every fan-out strategy × pushdown
//! setting must report byte-identically to dedicated per-query engines, while
//! pushing the predicate union into the shared pass does strictly less
//! union-building work than filtering at fan-out. The sharded sweep checks
//! that partitioning the sliding window across shards is invisible: S ∈
//! {2, 4} must report byte-identically to the unsharded engine, per batch.
//!
//! The seeded sweep takes its base seed from the `PCE_SWEEP_SEED` environment
//! variable (CI passes one per run and echoes it), so a failure in a CI log
//! is reproducible locally with the same value; every assertion message
//! carries the seed.

use parallel_cycle_enumeration::core::testing::{
    oracle_with_predicates, random_temporal_stream, StreamSpec,
};
use parallel_cycle_enumeration::graph::generators::{
    hub_burst, hub_burst_cycle_count, power_law_temporal, uniform_temporal, RandomTemporalConfig,
};
use parallel_cycle_enumeration::prelude::*;
use parallel_cycle_enumeration::workloads::streaming::large_portfolio;

/// Replays prepared ingest batches through a streaming engine, returning the
/// canonicalised union of all per-batch results plus the engine (for its
/// final window/snapshot).
fn replay_stream(
    batches: &[Vec<TemporalEdge>],
    query: StreamingQuery,
    retention: i64,
    threads: usize,
) -> (Vec<StreamCycle>, StreamingEngine) {
    let mut engine =
        StreamingEngine::with_threads(retention, query, threads).expect("valid streaming config");
    let mut union: Vec<StreamCycle> = Vec::new();
    for batch in batches {
        let report = engine.ingest(batch).expect("in-order replay");
        union.extend(report.cycles);
    }
    (sort_canonical(&union), engine)
}

/// Replays `graph`'s edges (already in stream order) in batches of
/// `batch_edges` — the graph-backed wrapper over [`replay_stream`] for sweeps
/// whose one-shot reference needs the full graph.
fn replay(
    graph: &TemporalGraph,
    query: StreamingQuery,
    retention: i64,
    batch_edges: usize,
    threads: usize,
) -> (Vec<StreamCycle>, StreamingEngine) {
    let batches: Vec<Vec<TemporalEdge>> = graph
        .edges()
        .chunks(batch_edges)
        .map(<[_]>::to_vec)
        .collect();
    replay_stream(&batches, query, retention, threads)
}

/// The deterministic comparison form used throughout: canonicalise every
/// cycle, then sort. Two result sets are equal iff these are byte-identical.
fn sort_canonical(cycles: &[StreamCycle]) -> Vec<StreamCycle> {
    let mut canon: Vec<StreamCycle> = cycles.iter().map(StreamCycle::canonicalize).collect();
    canon.sort_by(|a, b| a.edges.cmp(&b.edges));
    canon
}

/// One-shot enumeration over `graph`, resolved to edge triples and
/// canonicalised the same way as the streaming results.
fn one_shot(
    graph: &TemporalGraph,
    query: &Query,
    algorithm: Algorithm,
    granularity: Granularity,
) -> Vec<StreamCycle> {
    let engine = Engine::with_threads(2);
    let result = engine
        .run(
            &query
                .clone()
                .algorithm(algorithm)
                .granularity(granularity)
                .collect(CollectMode::Collect),
            graph,
        )
        .expect("valid one-shot query");
    let mut cycles: Vec<StreamCycle> = result
        .cycles
        .expect("collected")
        .iter()
        .map(|c| {
            StreamCycle {
                vertices: c.vertices.clone(),
                edges: c.edges.iter().map(|&id| graph.edge(id)).collect(),
            }
            .canonicalize()
        })
        .collect();
    cycles.sort_by(|a, b| a.edges.cmp(&b.edges));
    cycles
}

// Note on duplicates: a multigraph can hold parallel edges with identical
// `(src, dst, ts)` triples, so two *distinct* cycles (different edge ids)
// may resolve to equal `StreamCycle`s. Comparing sorted vectors therefore
// checks exact multiset equality — each cycle reported exactly once is
// implied by multiplicities matching the one-shot reference.

/// With a retention spanning the whole stream (no expiry), the union of
/// per-batch results equals a one-shot run over the full graph — for every
/// batch size, thread count and one-shot algorithm/granularity.
#[test]
fn delta_union_matches_one_shot_without_expiry() {
    for seed in 0..4 {
        let graph = uniform_temporal(RandomTemporalConfig {
            num_vertices: 16,
            num_edges: 80,
            time_span: 60,
            seed: 3_000 + seed,
        });
        for delta in [15, 40] {
            for (label, streaming_query, query) in [
                (
                    "simple",
                    StreamingQuery::simple(delta),
                    Query::simple().window(delta),
                ),
                (
                    "temporal",
                    StreamingQuery::temporal(delta),
                    Query::temporal().window(delta),
                ),
            ] {
                let reference =
                    one_shot(&graph, &query, Algorithm::Johnson, Granularity::FineGrained);
                // Every one-shot configuration agrees with itself first.
                for (algorithm, granularity) in [
                    (Algorithm::Johnson, Granularity::Sequential),
                    (Algorithm::ReadTarjan, Granularity::Sequential),
                    (Algorithm::ReadTarjan, Granularity::CoarseGrained),
                ] {
                    assert_eq!(
                        one_shot(&graph, &query, algorithm, granularity),
                        reference,
                        "seed {seed} delta {delta} {label} {algorithm:?}/{granularity:?}"
                    );
                }
                for batch_edges in [1, 7, 80] {
                    for threads in [1, 4] {
                        let (union, engine) = replay(
                            &graph,
                            streaming_query.clone(),
                            10_000,
                            batch_edges,
                            threads,
                        );
                        assert_eq!(engine.graph().total_expired(), 0, "no expiry in this sweep");
                        assert_eq!(
                            union, reference,
                            "seed {seed} delta {delta} {label} batch {batch_edges} \
                             threads {threads}"
                        );
                    }
                }
            }
        }
    }
}

/// With a retention shorter than the stream (edges expire mid-stream,
/// including batches that straddle the window edge), the union restricted to
/// cycles that survive in the final window equals a one-shot run over the
/// final snapshot.
#[test]
fn delta_union_matches_one_shot_on_final_window_with_expiry() {
    for seed in 0..4 {
        let graph = power_law_temporal(RandomTemporalConfig {
            num_vertices: 20,
            num_edges: 110,
            time_span: 100,
            seed: 4_000 + seed,
        });
        let delta = 20;
        let retention = 35; // well below the 100-step span: plenty of expiry
        for (label, streaming_query, query) in [
            (
                "simple",
                StreamingQuery::simple(delta),
                Query::simple().window(delta),
            ),
            (
                "temporal",
                StreamingQuery::temporal(delta),
                Query::temporal().window(delta),
            ),
        ] {
            // Batch sizes chosen so that some batches straddle the window:
            // 110 edges over ~100 time steps means a 45-edge batch spans more
            // than the retention of 35.
            for batch_edges in [3, 16, 45] {
                for threads in [1, 4] {
                    let (union, engine) = replay(
                        &graph,
                        streaming_query.clone(),
                        retention,
                        batch_edges,
                        threads,
                    );
                    assert!(
                        engine.graph().total_expired() > 0,
                        "seed {seed}: the sweep must actually exercise expiry"
                    );
                    let window = engine.graph().window().expect("live edges remain");
                    let snapshot = engine.snapshot();
                    let reference = one_shot(
                        &snapshot,
                        &query,
                        Algorithm::Johnson,
                        Granularity::Sequential,
                    );
                    let survivors: Vec<StreamCycle> = union
                        .iter()
                        .filter(|c| c.edges.iter().all(|e| window.contains(e.ts)))
                        .cloned()
                        .collect();
                    assert_eq!(
                        survivors, reference,
                        "seed {seed} {label} batch {batch_edges} threads {threads}"
                    );
                }
            }
        }
    }
}

/// Length-bounded queries stream identically to their one-shot counterparts.
#[test]
fn max_len_constraint_is_preserved_by_streaming() {
    let graph = uniform_temporal(RandomTemporalConfig {
        num_vertices: 14,
        num_edges: 70,
        time_span: 50,
        seed: 99,
    });
    let delta = 30;
    for max_len in [2, 3] {
        let (union, _) = replay(
            &graph,
            StreamingQuery::temporal(delta).max_len(max_len),
            10_000,
            5,
            1,
        );
        let reference = one_shot(
            &graph,
            &Query::temporal().window(delta).max_len(max_len),
            Algorithm::Johnson,
            Granularity::Sequential,
        );
        assert_eq!(union, reference, "max_len {max_len}");
        assert!(union.iter().all(|c| c.len() <= max_len));
    }
}

/// Base seed of the granularity sweep: `PCE_SWEEP_SEED` when set (CI passes a
/// fresh one per run so the sweep keeps exploring cases; the value is in the
/// CI log), a fixed default otherwise.
fn sweep_seed() -> u64 {
    std::env::var("PCE_SWEEP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000)
}

/// The seeded stream shape shared by the granularity and multi-query sweeps:
/// duplicate timestamps, bursty jumps and shuffled batches over ~100 edges.
/// The generated edge *sequence* depends only on the seed (batch size only
/// changes the chopping and within-batch order), so different batch sizes
/// replay the same stream — exactly what the batching-invariance assertions
/// need.
fn sweep_stream(seed: u64, batch_edges: usize) -> Vec<Vec<TemporalEdge>> {
    random_temporal_stream(
        seed,
        &StreamSpec {
            num_vertices: 18,
            num_edges: 100,
            batch_edges,
            duplicate_ts: 0.15,
            burstiness: 0.1,
            out_of_order: true,
        },
    )
}

/// The differential sweep for the streaming granularities: seeded batches ×
/// granularity {sequential, coarse, fine} × threads {1, 4} × batch sizes
/// (including expiry-straddling ones) must produce **byte-identical** cycle
/// sets — equal to a one-shot enumeration over the final snapshot once
/// restricted to cycles that survive in the final window, and equal to each
/// other batch by batch.
#[test]
fn granularity_sweep_is_byte_identical_to_one_shot() {
    let base = sweep_seed();
    let mut cycles_seen = 0usize;
    for seed in base..base + 2 {
        let delta = 25;
        // One retention without expiry, one that forces it mid-stream.
        for retention in [10_000, 40] {
            for (label, streaming_query, query) in [
                (
                    "simple",
                    StreamingQuery::simple(delta).max_len(5),
                    Query::simple().window(delta).max_len(5),
                ),
                (
                    "temporal",
                    StreamingQuery::temporal(delta),
                    Query::temporal().window(delta),
                ),
            ] {
                // The bursty stream spans well beyond the retention of 40,
                // so large batches straddle window expiry.
                for batch_edges in [1, 9, 45] {
                    let batches = sweep_stream(seed, batch_edges);
                    let mut reference_union: Option<Vec<StreamCycle>> = None;
                    for granularity in [
                        Granularity::Sequential,
                        Granularity::CoarseGrained,
                        Granularity::FineGrained,
                    ] {
                        for threads in [1, 4] {
                            let (union, engine) = replay_stream(
                                &batches,
                                streaming_query.clone().granularity(granularity),
                                retention,
                                threads,
                            );
                            // Every configuration reports the same union …
                            match &reference_union {
                                None => reference_union = Some(union.clone()),
                                Some(expected) => assert_eq!(
                                    &union, expected,
                                    "seed {seed} {label} retention {retention} batch \
                                     {batch_edges} {granularity:?} threads {threads}"
                                ),
                            }
                            // … and the survivors match the one-shot run over
                            // the final snapshot byte for byte.
                            let window = engine.graph().window().expect("live edges remain");
                            let snapshot = engine.snapshot();
                            let one_shot = one_shot(
                                &snapshot,
                                &query,
                                Algorithm::Johnson,
                                Granularity::Sequential,
                            );
                            let survivors: Vec<StreamCycle> = union
                                .iter()
                                .filter(|c| c.edges.iter().all(|e| window.contains(e.ts)))
                                .cloned()
                                .collect();
                            assert_eq!(
                                survivors, one_shot,
                                "seed {seed} {label} retention {retention} batch \
                                 {batch_edges} {granularity:?} threads {threads}"
                            );
                            cycles_seen += union.len();
                        }
                    }
                }
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
}

/// The scheduling-strategy differential sweep: at [`Granularity::FineGrained`]
/// the work-stealing and work-assisting drivers must report **byte-identical**
/// cycles per batch *and* agree on every deterministic work counter (edge
/// visits, recursive calls, copies, union members, roots) — only the
/// steal/join/assist scheduling counters may differ. Seeded streams × threads
/// {1, 4} × batch sizes including expiry-straddling ones, for both cycle
/// kinds. Base seed from `PCE_SWEEP_SEED` (echoed by CI; every assertion
/// message carries the seed).
#[test]
fn sched_strategy_sweep_is_byte_identical() {
    let base = sweep_seed();
    let mut cycles_seen = 0usize;
    for seed in base..base + 2 {
        let delta = 25;
        for retention in [10_000i64, 40] {
            for (label, query) in [
                ("simple", StreamingQuery::simple(delta).max_len(5)),
                ("temporal", StreamingQuery::temporal(delta)),
            ] {
                for batch_edges in [1usize, 9, 45] {
                    let batches = sweep_stream(seed, batch_edges);
                    for threads in [1usize, 4] {
                        let ctx = format!(
                            "seed {seed} {label} retention {retention} batch {batch_edges} \
                             threads {threads}"
                        );
                        let mut steal = StreamingEngine::with_threads(
                            retention,
                            query
                                .clone()
                                .granularity(Granularity::FineGrained)
                                .sched(SchedStrategy::Stealing),
                            threads,
                        )
                        .expect("valid streaming config");
                        let mut assist = StreamingEngine::with_threads(
                            retention,
                            query
                                .clone()
                                .granularity(Granularity::FineGrained)
                                .sched(SchedStrategy::Assisting),
                            threads,
                        )
                        .expect("valid streaming config");
                        let mut assist_joined = 0u64;
                        for (b, batch) in batches.iter().enumerate() {
                            let sr = steal.ingest(batch).expect("in-order replay");
                            let ar = assist.ingest(batch).expect("in-order replay");
                            assert_eq!(
                                sort_canonical(&sr.cycles),
                                sort_canonical(&ar.cycles),
                                "{ctx} batch index {b}"
                            );
                            assert_eq!(sr.cycles_found, ar.cycles_found, "{ctx} batch index {b}");
                            // Same expansion body => identical deterministic
                            // counters, whatever the schedule did.
                            assert_eq!(
                                sr.stats.work.total_edge_visits(),
                                ar.stats.work.total_edge_visits(),
                                "{ctx} batch index {b}"
                            );
                            assert_eq!(
                                sr.stats.work.total_recursive_calls(),
                                ar.stats.work.total_recursive_calls(),
                                "{ctx} batch index {b}"
                            );
                            assert_eq!(
                                sr.stats.work.total_copies(),
                                ar.stats.work.total_copies(),
                                "{ctx} batch index {b}"
                            );
                            assert_eq!(
                                sr.stats.work.total_union_members(),
                                ar.stats.work.total_union_members(),
                                "{ctx} batch index {b}"
                            );
                            assert_eq!(
                                sr.stats.work.total_roots(),
                                ar.stats.work.total_roots(),
                                "{ctx} batch index {b}"
                            );
                            // The assisting driver never steals; the stealing
                            // driver never joins.
                            assert_eq!(ar.stats.work.total_steals(), 0, "{ctx} batch index {b}");
                            assert_eq!(sr.stats.work.total_joins(), 0, "{ctx} batch index {b}");
                            assist_joined += ar.stats.work.total_joins();
                            cycles_seen += ar.cycles.len();
                        }
                        if threads > 1 {
                            // Fine-grained multi-threaded batches with roots
                            // ran the assisting driver, which records a join
                            // per participating worker per run.
                            assert!(assist_joined > 0, "{ctx}: no joins recorded");
                        }
                    }
                }
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
}

/// The multi-engine leg of the strategy sweep: a [`MultiStreamingEngine`]
/// under [`SchedStrategy::Assisting`] — which routes both the shared
/// fine-grained pass *and* the deferred `(cohort, candidate-chunk)` fan-out
/// through work-assisting loops — must report per query and per batch
/// byte-identically to the same portfolio under the default stealing
/// strategy, and its deferred dispatch must record loop joins.
#[test]
fn multi_engine_sched_strategy_matches_stealing() {
    let base = sweep_seed();
    let portfolio = [
        StreamingQuery::temporal(25),
        StreamingQuery::simple(12).max_len(4),
        StreamingQuery::temporal(8).max_len(3),
        StreamingQuery::simple(30).include_self_loops(true),
    ];
    let mut cycles_seen = 0usize;
    for seed in base..base + 2 {
        for batch_edges in [9usize, 45] {
            let batches = sweep_stream(seed, batch_edges);
            let ctx = format!("seed {seed} batch {batch_edges}");
            let threads = 4;
            let build = |sched: SchedStrategy| {
                let mut multi = MultiStreamingEngine::with_threads(10_000, threads)
                    .expect("valid retention")
                    .with_granularity(Granularity::FineGrained)
                    .with_sched(sched)
                    // Portfolio of 4 >= threshold 2: every batch with
                    // candidates exercises the deferred parallel fan-out.
                    .with_parallel_fan_out_threshold(2);
                let ids: Vec<QueryId> = portfolio
                    .iter()
                    .map(|q| multi.subscribe(q.clone()).expect("valid subscription"))
                    .collect();
                (multi, ids)
            };
            let (mut steal, steal_ids) = build(SchedStrategy::Stealing);
            let (mut assist, assist_ids) = build(SchedStrategy::Assisting);
            assert_eq!(steal_ids, assist_ids);
            let mut fan_out_joins = 0u64;
            let mut deferred_candidates = 0u64;
            for (b, batch) in batches.iter().enumerate() {
                let sr = steal.ingest(batch).expect("in-order replay");
                let ar = assist.ingest(batch).expect("in-order replay");
                assert_eq!(sr.fan_out.joins, 0, "{ctx} batch index {b}");
                if ar.fan_out.parallel {
                    deferred_candidates += ar.candidates;
                    fan_out_joins += ar.fan_out.joins;
                }
                for id in &steal_ids {
                    let s = sr.report(*id).expect("subscribed");
                    let a = ar.report(*id).expect("subscribed");
                    assert_eq!(
                        sort_canonical(&s.cycles),
                        sort_canonical(&a.cycles),
                        "{ctx} query {id} batch index {b}"
                    );
                    assert_eq!(
                        s.cycles_found, a.cycles_found,
                        "{ctx} query {id} batch index {b}"
                    );
                    cycles_seen += a.cycles.len();
                }
            }
            if deferred_candidates > 0 {
                assert!(
                    fan_out_joins > 0,
                    "{ctx}: deferred assisting dispatch recorded no joins"
                );
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
}

/// The multi-query differential sweep (the tentpole's harness): one
/// [`MultiStreamingEngine`] with K ∈ {2, 4} heterogeneous subscriptions —
/// different kinds, windows, length bounds and self-loop flags — must report,
/// **per query and per batch**, byte-identical canonicalised cycles to K
/// independent [`StreamingEngine`]s replaying the same seeded stream, across
/// granularities {sequential, coarse, fine}, threads {1, 4} and batch sizes
/// including expiry-straddling ones. Base seed from `PCE_SWEEP_SEED` (echoed
/// by CI; every assertion message carries the seed).
#[test]
fn multi_query_sweep_matches_independent_engines() {
    let base = sweep_seed();
    let portfolio = [
        StreamingQuery::temporal(25),
        StreamingQuery::simple(12).max_len(4),
        StreamingQuery::temporal(8).max_len(3),
        StreamingQuery::simple(30).include_self_loops(true),
    ];
    let mut cycles_seen = 0usize;
    for seed in base..base + 2 {
        for k in [2usize, 4] {
            let queries = &portfolio[..k];
            // One retention without expiry, one that forces it mid-stream.
            for retention in [10_000i64, 40] {
                for batch_edges in [1usize, 9, 45] {
                    let batches = sweep_stream(seed, batch_edges);
                    for granularity in [
                        Granularity::Sequential,
                        Granularity::CoarseGrained,
                        Granularity::FineGrained,
                    ] {
                        for threads in [1usize, 4] {
                            let label = format!(
                                "seed {seed} k {k} retention {retention} batch {batch_edges} \
                                 {granularity:?} threads {threads}"
                            );
                            // The shared engine: K subscriptions, one ingest
                            // pass per batch.
                            let mut multi = MultiStreamingEngine::with_threads(retention, threads)
                                .expect("valid retention")
                                .with_granularity(granularity);
                            let ids: Vec<QueryId> = queries
                                .iter()
                                .map(|q| multi.subscribe(q.clone()).expect("valid subscription"))
                                .collect();
                            // The baseline: one dedicated engine per query.
                            let mut dedicated: Vec<StreamingEngine> = queries
                                .iter()
                                .map(|q| {
                                    StreamingEngine::with_threads(
                                        retention,
                                        q.clone().granularity(granularity),
                                        threads,
                                    )
                                    .expect("valid streaming config")
                                })
                                .collect();
                            for (b, batch) in batches.iter().enumerate() {
                                let shared = multi.ingest(batch).expect("in-order replay");
                                for (id, engine) in ids.iter().zip(&mut dedicated) {
                                    let own = engine.ingest(batch).expect("in-order replay");
                                    let fanned = shared.report(*id).expect("subscribed");
                                    assert_eq!(
                                        sort_canonical(&fanned.cycles),
                                        sort_canonical(&own.cycles),
                                        "{label} query {id} batch index {b}"
                                    );
                                    assert_eq!(
                                        fanned.cycles_found, own.cycles_found,
                                        "{label} query {id} batch index {b}"
                                    );
                                    cycles_seen += own.cycles.len();
                                }
                            }
                            // Lifetime totals agree too (stable attribution).
                            for (id, engine) in ids.iter().zip(&dedicated) {
                                assert_eq!(
                                    multi.total_cycles(*id),
                                    Some(engine.total_cycles()),
                                    "{label} query {id}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
}

/// The fan-out property sweep (the tentpole's differential harness): a
/// [`MultiStreamingEngine`] dispatching through the constraint-indexed
/// [`SubscriptionIndex`] must report, **per query and per batch**,
/// byte-identical canonicalised cycles to the same engine running the naive
/// per-candidate loop — across seeded portfolios of K ∈ {4, 16, 64}
/// heterogeneous subscriptions ([`large_portfolio`]'s 16-profile pool, in
/// [`CollectMode::Collect`] so the cycles themselves are compared), shared
/// pass granularities {sequential, coarse, fine}, threads {1, 4} and
/// retentions with and without mid-stream expiry. At K = 64 with threads = 4
/// the sweep also exercises the deferred parallel dispatch path. Base seed
/// from `PCE_SWEEP_SEED` (echoed by CI; every assertion message carries the
/// seed).
#[test]
fn fan_out_index_sweep_is_byte_identical_to_naive_loop() {
    let base = sweep_seed();
    let mut cycles_seen = 0usize;
    let mut parallel_batches = 0usize;
    for seed in base..base + 2 {
        for k in [4usize, 16, 64] {
            let portfolio: Vec<StreamingQuery> = large_portfolio(k, 25)
                .into_iter()
                .map(|q| q.collect(CollectMode::Collect))
                .collect();
            // One retention without expiry, one that forces it mid-stream.
            for retention in [10_000i64, 40] {
                let batches = sweep_stream(seed, 9);
                for granularity in [
                    Granularity::Sequential,
                    Granularity::CoarseGrained,
                    Granularity::FineGrained,
                ] {
                    for threads in [1usize, 4] {
                        let label = format!(
                            "seed {seed} k {k} retention {retention} {granularity:?} \
                             threads {threads}"
                        );
                        let mut engines: Vec<MultiStreamingEngine> =
                            [FanOutStrategy::Naive, FanOutStrategy::Indexed]
                                .into_iter()
                                .map(|strategy| {
                                    let mut engine =
                                        MultiStreamingEngine::with_threads(retention, threads)
                                            .expect("valid retention")
                                            .with_granularity(granularity)
                                            .with_fan_out(strategy);
                                    for q in &portfolio {
                                        engine.subscribe(q.clone()).expect("valid subscription");
                                    }
                                    engine
                                })
                                .collect();
                        let ids: Vec<QueryId> =
                            engines[0].subscriptions().map(|(id, _)| id).collect();
                        for (b, batch) in batches.iter().enumerate() {
                            let [naive, indexed] = &mut engines[..] else {
                                unreachable!("two strategies");
                            };
                            let rn = naive.ingest(batch).expect("in-order replay");
                            let ri = indexed.ingest(batch).expect("in-order replay");
                            assert_eq!(rn.candidates, ri.candidates, "{label} batch {b}");
                            assert!(
                                ri.fan_out.checks <= rn.fan_out.checks,
                                "{label} batch {b}: the index can never check more than \
                                 the linear loop"
                            );
                            parallel_batches += usize::from(ri.fan_out.parallel);
                            for id in &ids {
                                let a = rn.report(*id).expect("subscribed");
                                let c = ri.report(*id).expect("subscribed");
                                assert_eq!(
                                    a.cycles_found, c.cycles_found,
                                    "{label} query {id} batch {b}"
                                );
                                assert_eq!(
                                    sort_canonical(&a.cycles),
                                    sort_canonical(&c.cycles),
                                    "{label} query {id} batch {b}"
                                );
                                cycles_seen += a.cycles.len();
                            }
                        }
                        // Lifetime totals agree too (stable attribution).
                        for id in &ids {
                            assert_eq!(
                                engines[0].total_cycles(*id),
                                engines[1].total_cycles(*id),
                                "{label} query {id}"
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
    assert!(
        parallel_batches > 0,
        "the K = 64, threads = 4 configurations must exercise the deferred \
         parallel dispatch path"
    );
}

/// The sharded differential sweep (the tentpole's harness): partitioning the
/// sliding window across S ∈ {2, 4} shards must be invisible — per batch,
/// byte-identical canonicalised cycles and counts to the unsharded (S = 1)
/// engine — across granularities {sequential, coarse, fine}, threads {1, 4}
/// and retentions with and without mid-stream expiry; likewise for a sharded
/// [`MultiStreamingEngine`] against its unsharded twin. The final window and
/// lifetime expiry totals must agree too, so sharding is invisible to the
/// graph as well as the reports. Base seed from `PCE_SWEEP_SEED` (echoed by
/// CI; every assertion message carries the seed).
#[test]
fn sharded_sweep_is_byte_identical_to_unsharded() {
    let base = sweep_seed();
    let portfolio = [
        StreamingQuery::temporal(25),
        StreamingQuery::simple(12).max_len(4),
    ];
    let mut cycles_seen = 0usize;
    for seed in base..base + 2 {
        // One retention without expiry, one that forces it mid-stream.
        for retention in [10_000i64, 40] {
            let batches = sweep_stream(seed, 9);
            for granularity in [
                Granularity::Sequential,
                Granularity::CoarseGrained,
                Granularity::FineGrained,
            ] {
                for threads in [1usize, 4] {
                    let label = format!(
                        "seed {seed} retention {retention} {granularity:?} threads {threads}"
                    );
                    // The single-query engines: unsharded baseline plus one
                    // engine per shard count.
                    let query = StreamingQuery::temporal(25).granularity(granularity);
                    let mut baseline =
                        StreamingEngine::with_threads(retention, query.clone(), threads)
                            .expect("valid streaming config");
                    let mut sharded: Vec<(usize, StreamingEngine)> = [2usize, 4]
                        .into_iter()
                        .map(|s| {
                            let engine = StreamingEngine::with_threads(
                                retention,
                                query.clone().shards(ShardSpec::new(s)),
                                threads,
                            )
                            .expect("valid streaming config");
                            (s, engine)
                        })
                        .collect();
                    // The multi-query engines: same portfolio, engine-level
                    // shard layout chosen before the first batch.
                    let mut multi_base = MultiStreamingEngine::with_threads(retention, threads)
                        .expect("valid retention")
                        .with_granularity(granularity);
                    let ids: Vec<QueryId> = portfolio
                        .iter()
                        .map(|q| multi_base.subscribe(q.clone()).expect("valid subscription"))
                        .collect();
                    let mut multi_sharded: Vec<(usize, MultiStreamingEngine)> = [2usize, 4]
                        .into_iter()
                        .map(|s| {
                            let mut engine = MultiStreamingEngine::with_threads(retention, threads)
                                .expect("valid retention")
                                .with_granularity(granularity)
                                .with_shards(ShardSpec::new(s));
                            for q in &portfolio {
                                engine.subscribe(q.clone()).expect("valid subscription");
                            }
                            (s, engine)
                        })
                        .collect();
                    for (b, batch) in batches.iter().enumerate() {
                        let want = baseline.ingest(batch).expect("in-order replay");
                        let want_cycles = sort_canonical(&want.cycles);
                        for (s, engine) in &mut sharded {
                            let got = engine.ingest(batch).expect("in-order replay");
                            assert_eq!(
                                got.cycles_found, want.cycles_found,
                                "{label} shards {s} batch {b}"
                            );
                            assert_eq!(
                                sort_canonical(&got.cycles),
                                want_cycles,
                                "{label} shards {s} batch {b}"
                            );
                        }
                        cycles_seen += want.cycles.len();
                        let multi_want = multi_base.ingest(batch).expect("in-order replay");
                        for (s, engine) in &mut multi_sharded {
                            let multi_got = engine.ingest(batch).expect("in-order replay");
                            for id in &ids {
                                let a = multi_want.report(*id).expect("subscribed");
                                let c = multi_got.report(*id).expect("subscribed");
                                assert_eq!(
                                    c.cycles_found, a.cycles_found,
                                    "{label} shards {s} query {id} batch {b}"
                                );
                                assert_eq!(
                                    sort_canonical(&c.cycles),
                                    sort_canonical(&a.cycles),
                                    "{label} shards {s} query {id} batch {b}"
                                );
                            }
                        }
                    }
                    // Sharding is invisible to the graph too: same final
                    // window, same lifetime totals.
                    for (s, engine) in &sharded {
                        assert_eq!(
                            engine.graph().window(),
                            baseline.graph().window(),
                            "{label} shards {s}"
                        );
                        assert_eq!(
                            engine.graph().total_expired(),
                            baseline.graph().total_expired(),
                            "{label} shards {s}"
                        );
                    }
                    for (s, engine) in &multi_sharded {
                        assert_eq!(
                            engine.graph().window(),
                            multi_base.graph().window(),
                            "{label} shards {s}"
                        );
                        for id in &ids {
                            assert_eq!(
                                engine.total_cycles(*id),
                                multi_base.total_cycles(*id),
                                "{label} shards {s} query {id}"
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
}

/// Deterministically attributes the sweep stream: amounts and labels are
/// derived from each edge's endpoints and timestamp, so every configuration
/// replays the same attributed stream regardless of batching or threads.
/// Amounts land roughly uniformly in `0..100_000`; labels in `0..8`.
fn attribute_stream(batches: &[Vec<TemporalEdge>]) -> Vec<Vec<TemporalEdge>> {
    batches
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|e| {
                    let mix = u64::from(e.src) * 31 + u64::from(e.dst) * 7 + (e.ts as u64) * 13 + 5;
                    TemporalEdge::with_attrs(
                        e.src,
                        e.dst,
                        e.ts,
                        (mix * 997) % 100_000,
                        ((mix >> 3) % 8) as u16,
                    )
                })
                .collect()
        })
        .collect()
}

/// The predicate-bearing portfolio for the fan-out sweep. Every member
/// carries a minimum-amount bound, so the portfolio's predicate *union*
/// (amount floor 40 000) genuinely rejects a large slice of the attributed
/// stream and pushdown has something to prune; the label filters and amount
/// intervals differ per subscription, so fan-out must still apply each exact
/// predicate. All in [`CollectMode::Collect`] so the cycles themselves are
/// compared.
fn predicate_portfolio() -> Vec<StreamingQuery> {
    vec![
        StreamingQuery::temporal(25).predicate(EdgePredicate::pass_all().min_amount(60_000)),
        StreamingQuery::simple(12).max_len(4).predicate(
            EdgePredicate::pass_all()
                .min_amount(45_000)
                .labels(LabelFilter::allow(vec![2, 5])),
        ),
        StreamingQuery::temporal(8).max_len(3).predicate(
            EdgePredicate::pass_all()
                .min_amount(50_000)
                .max_amount(90_000),
        ),
        StreamingQuery::simple(30).predicate(
            EdgePredicate::pass_all()
                .min_amount(40_000)
                .labels(LabelFilter::deny(vec![0])),
        ),
    ]
    .into_iter()
    .map(|q| q.collect(CollectMode::Collect))
    .collect()
}

/// The predicate extension of the fan-out sweep: a portfolio of
/// attribute-filtered subscriptions replayed through every fan-out strategy
/// {Naive, Indexed} × pushdown setting {on, off} must report, **per query and
/// per batch**, byte-identical canonicalised cycles to dedicated single-query
/// engines — across granularities {sequential, coarse, fine}, threads {1, 4}
/// and retentions with and without mid-stream expiry. The pushdown runs must
/// never build larger edge unions than their filter-at-fan-out twins, and
/// across the whole sweep they must build strictly smaller ones. Base seed
/// from `PCE_SWEEP_SEED` (echoed by CI; every assertion message carries the
/// seed).
#[test]
fn predicate_sweep_is_byte_identical_across_strategies_and_pushdown() {
    let base = sweep_seed();
    let portfolio = predicate_portfolio();
    let mut cycles_seen = 0usize;
    let mut push_union_total = 0u64;
    let mut post_union_total = 0u64;
    for seed in base..base + 2 {
        for retention in [10_000i64, 40] {
            let batches = attribute_stream(&sweep_stream(seed, 9));
            for granularity in [
                Granularity::Sequential,
                Granularity::CoarseGrained,
                Granularity::FineGrained,
            ] {
                for threads in [1usize, 4] {
                    let label = format!(
                        "seed {seed} retention {retention} {granularity:?} threads {threads}"
                    );
                    // Four shared engines: every strategy × pushdown setting.
                    let configs = [
                        (FanOutStrategy::Naive, true),
                        (FanOutStrategy::Naive, false),
                        (FanOutStrategy::Indexed, true),
                        (FanOutStrategy::Indexed, false),
                    ];
                    let mut engines: Vec<MultiStreamingEngine> = configs
                        .iter()
                        .map(|&(strategy, pushdown)| {
                            let mut engine = MultiStreamingEngine::with_threads(retention, threads)
                                .expect("valid retention")
                                .with_granularity(granularity)
                                .with_fan_out(strategy)
                                .with_pushdown(pushdown);
                            for q in &portfolio {
                                engine.subscribe(q.clone()).expect("valid subscription");
                            }
                            engine
                        })
                        .collect();
                    let ids: Vec<QueryId> = engines[0].subscriptions().map(|(id, _)| id).collect();
                    // The independent oracle: one dedicated engine per query,
                    // each applying its own predicate through the single-query
                    // pushdown path.
                    let mut dedicated: Vec<StreamingEngine> = portfolio
                        .iter()
                        .map(|q| {
                            StreamingEngine::with_threads(
                                retention,
                                q.clone().granularity(granularity),
                                threads,
                            )
                            .expect("valid streaming config")
                        })
                        .collect();
                    let mut union_members = [0u64; 4];
                    for (b, batch) in batches.iter().enumerate() {
                        let reports: Vec<MultiBatchReport> = engines
                            .iter_mut()
                            .map(|e| e.ingest(batch).expect("in-order replay"))
                            .collect();
                        for (m, report) in union_members.iter_mut().zip(&reports) {
                            *m += report.stats.work.total_union_members();
                        }
                        for (id, engine) in ids.iter().zip(&mut dedicated) {
                            let own = engine.ingest(batch).expect("in-order replay");
                            let own_cycles = sort_canonical(&own.cycles);
                            for (&(strategy, pushdown), report) in configs.iter().zip(&reports) {
                                let fanned = report.report(*id).expect("subscribed");
                                assert_eq!(
                                    fanned.cycles_found, own.cycles_found,
                                    "{label} {strategy:?} pushdown {pushdown} query {id} \
                                     batch {b}"
                                );
                                assert_eq!(
                                    sort_canonical(&fanned.cycles),
                                    own_cycles,
                                    "{label} {strategy:?} pushdown {pushdown} query {id} \
                                     batch {b}"
                                );
                            }
                            cycles_seen += own.cycles.len();
                        }
                    }
                    // Pushdown never builds a larger union than its
                    // filter-at-fan-out twin (same strategy, same stream) …
                    for (push, post) in [(0usize, 1usize), (2, 3)] {
                        assert!(
                            union_members[push] <= union_members[post],
                            "{label}: pushdown built a larger union \
                             ({} vs {})",
                            union_members[push],
                            union_members[post]
                        );
                        push_union_total += union_members[push];
                        post_union_total += union_members[post];
                    }
                    // Lifetime totals agree across all four configurations.
                    for id in &ids {
                        let totals: Vec<_> = engines.iter().map(|e| e.total_cycles(*id)).collect();
                        assert!(
                            totals.windows(2).all(|w| w[0] == w[1]),
                            "{label} query {id}: lifetime totals diverged {totals:?}"
                        );
                    }
                }
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
    // … and across the whole sweep the pruning must actually bite.
    assert!(
        push_union_total < post_union_total,
        "pushdown never pruned anything: {push_union_total} vs {post_union_total}"
    );
}

/// One member of the extended-predicate portfolio: the streaming query, its
/// structural one-shot twin (same kind/window/length bound, **no**
/// predicate — the zero-pruning enumeration the brute-force oracle
/// post-filters), and the exact predicate the oracle applies.
struct ExtendedMember {
    name: &'static str,
    streaming: StreamingQuery,
    one_shot: Query,
    predicate: CyclePredicate,
}

/// The heterogeneous extended-predicate portfolio: aggregate intervals,
/// strict monotonicity, position-pinned constraints and vertex deny-sets,
/// mixed with plain edge predicates. Every member shares four hull
/// dimensions — an amount floor, a finite total ceiling, a `FromEnd(0)`
/// floor and the denied vertex 7 — so the portfolio's union hull keeps a
/// constraint in *each* pushdown class and the pushdown runs record
/// aggregate, positional and vertex prunes; the dimensions that differ per
/// member (monotonicity, `FromStart(0)`, the extra denied vertices) loosen
/// out of the hull and are only enforced by the exact fan-out re-check.
fn extended_portfolio() -> Vec<ExtendedMember> {
    let aggregate_interval = CyclePredicate::pass_all()
        .edge(EdgePredicate::pass_all().min_amount(10_000))
        .total_min(40_000)
        .total_max(120_000)
        .at(
            Position::FromEnd(0),
            EdgePredicate::pass_all().min_amount(20_000),
        )
        .vertices(VertexFilter::deny(vec![3, 7]));
    let monotone = CyclePredicate::pass_all()
        .edge(
            EdgePredicate::pass_all()
                .min_amount(5_000)
                .labels(LabelFilter::allow(vec![2, 5])),
        )
        .total_max(110_000)
        .monotone_amounts(true)
        .at(
            Position::FromEnd(0),
            EdgePredicate::pass_all().min_amount(15_000),
        )
        .vertices(VertexFilter::deny(vec![7]));
    let positional = CyclePredicate::pass_all()
        .edge(
            EdgePredicate::pass_all()
                .min_amount(8_000)
                .max_amount(80_000),
        )
        .total_min(30_000)
        .total_max(115_000)
        .at(
            Position::FromEnd(0),
            EdgePredicate::pass_all().min_amount(10_000),
        )
        .at(
            Position::FromStart(0),
            EdgePredicate::pass_all().labels(LabelFilter::deny(vec![0])),
        )
        .vertices(VertexFilter::deny(vec![7, 11]));
    let edge_heavy = CyclePredicate::pass_all()
        .edge(
            EdgePredicate::pass_all()
                .min_amount(6_000)
                .labels(LabelFilter::deny(vec![0])),
        )
        .total_max(120_000)
        .at(
            Position::FromEnd(0),
            EdgePredicate::pass_all().min_amount(12_000),
        )
        .vertices(VertexFilter::deny(vec![2, 7]));
    vec![
        ExtendedMember {
            name: "aggregate-interval",
            streaming: StreamingQuery::temporal(25).cycle_predicate(aggregate_interval.clone()),
            one_shot: Query::temporal().window(25),
            predicate: aggregate_interval,
        },
        ExtendedMember {
            name: "monotone",
            streaming: StreamingQuery::simple(12)
                .max_len(4)
                .cycle_predicate(monotone.clone()),
            one_shot: Query::simple().window(12).max_len(4),
            predicate: monotone,
        },
        ExtendedMember {
            name: "positional",
            streaming: StreamingQuery::temporal(8)
                .max_len(3)
                .cycle_predicate(positional.clone()),
            one_shot: Query::temporal().window(8).max_len(3),
            predicate: positional,
        },
        ExtendedMember {
            name: "edge-heavy",
            streaming: StreamingQuery::simple(30).cycle_predicate(edge_heavy.clone()),
            one_shot: Query::simple().window(30),
            predicate: edge_heavy,
        },
    ]
    .into_iter()
    .map(|m| ExtendedMember {
        streaming: m.streaming.collect(CollectMode::Collect),
        ..m
    })
    .collect()
}

/// The extended-predicate property sweep (the tentpole's differential
/// harness): the heterogeneous portfolio of [`extended_portfolio`] replayed
/// through a [`MultiStreamingEngine`] must report, **per query and per
/// batch**, byte-identical canonicalised cycles to dedicated single-query
/// engines — across granularities {sequential, coarse, fine} × threads
/// {1, 4} × [`SchedStrategy`] × pushdown {on, off} × retentions with and
/// without mid-stream expiry — and, at end of stream, each query's
/// window-surviving union must equal a **zero-pruning brute-force oracle**:
/// a pass-all one-shot enumeration of the final snapshot post-filtered
/// through the exact predicate by [`oracle_with_predicates`]. The
/// deterministic prune counters are asserted three ways: the pushdown run
/// never builds a larger union than its post-filter twin per configuration
/// (strictly smaller summed sweep-wide), the post-filter runs record zero
/// extended prunes (a pass-all hull has nothing to prune against), and the
/// pushdown prune counters depend only on the data — identical across
/// granularity, threads and scheduling strategy — and each class
/// (aggregate, positional, vertex) fires somewhere in the sweep. Base seed
/// from `PCE_SWEEP_SEED` (echoed by CI; every assertion message carries the
/// seed).
#[test]
fn extended_predicate_sweep_is_byte_identical() {
    let base = sweep_seed();
    let portfolio = extended_portfolio();
    let mut cycles_seen = 0usize;
    let mut push_union_total = 0u64;
    let mut post_union_total = 0u64;
    let mut push_prunes_total = [0u64; 3];
    let mut prune_fingerprints: std::collections::HashMap<(u64, i64), [u64; 3]> =
        std::collections::HashMap::new();
    for seed in base..base + 2 {
        for retention in [10_000i64, 40] {
            let batches = attribute_stream(&sweep_stream(seed, 9));
            for granularity in [
                Granularity::Sequential,
                Granularity::CoarseGrained,
                Granularity::FineGrained,
            ] {
                for threads in [1usize, 4] {
                    for sched in [SchedStrategy::Stealing, SchedStrategy::Assisting] {
                        let label = format!(
                            "seed {seed} retention {retention} {granularity:?} threads \
                             {threads} {sched:?}"
                        );
                        // Two shared engines: pushdown on and off.
                        let mut engines: Vec<MultiStreamingEngine> = [true, false]
                            .into_iter()
                            .map(|pushdown| {
                                let mut engine =
                                    MultiStreamingEngine::with_threads(retention, threads)
                                        .expect("valid retention")
                                        .with_granularity(granularity)
                                        .with_sched(sched)
                                        .with_pushdown(pushdown);
                                for m in &portfolio {
                                    engine
                                        .subscribe(m.streaming.clone())
                                        .expect("valid subscription");
                                }
                                engine
                            })
                            .collect();
                        let ids: Vec<QueryId> =
                            engines[0].subscriptions().map(|(id, _)| id).collect();
                        // The dedicated baseline: one single-query engine per
                        // member, each pruning with its own exact predicate.
                        let mut dedicated: Vec<StreamingEngine> = portfolio
                            .iter()
                            .map(|m| {
                                StreamingEngine::with_threads(
                                    retention,
                                    m.streaming.clone().granularity(granularity).sched(sched),
                                    threads,
                                )
                                .expect("valid streaming config")
                            })
                            .collect();
                        let mut unions: Vec<Vec<StreamCycle>> = vec![Vec::new(); portfolio.len()];
                        let mut union_members = [0u64; 2];
                        let mut prunes = [[0u64; 3]; 2];
                        for (b, batch) in batches.iter().enumerate() {
                            let reports: Vec<MultiBatchReport> = engines
                                .iter_mut()
                                .map(|e| e.ingest(batch).expect("in-order replay"))
                                .collect();
                            for ((members, per_class), report) in union_members
                                .iter_mut()
                                .zip(prunes.iter_mut())
                                .zip(&reports)
                            {
                                *members += report.stats.work.total_union_members();
                                per_class[0] += report.stats.work.total_aggregate_prunes();
                                per_class[1] += report.stats.work.total_positional_prunes();
                                per_class[2] += report.stats.work.total_vertex_prunes();
                            }
                            for ((id, engine), (member, union)) in ids
                                .iter()
                                .zip(&mut dedicated)
                                .zip(portfolio.iter().zip(&mut unions))
                            {
                                let own = engine.ingest(batch).expect("in-order replay");
                                let own_cycles = sort_canonical(&own.cycles);
                                for (pushdown, report) in [true, false].into_iter().zip(&reports) {
                                    let fanned = report.report(*id).expect("subscribed");
                                    assert_eq!(
                                        fanned.cycles_found, own.cycles_found,
                                        "{label} {} pushdown {pushdown} batch {b}",
                                        member.name
                                    );
                                    assert_eq!(
                                        sort_canonical(&fanned.cycles),
                                        own_cycles,
                                        "{label} {} pushdown {pushdown} batch {b}",
                                        member.name
                                    );
                                }
                                union.extend(own.cycles.iter().map(StreamCycle::canonicalize));
                                cycles_seen += own.cycles.len();
                            }
                        }
                        // The zero-pruning oracle: per member, enumerate the
                        // final snapshot with **no** predicate at all, then
                        // post-filter through the exact predicate. The
                        // window-surviving streamed union must match it byte
                        // for byte.
                        for ((member, union), engine) in
                            portfolio.iter().zip(&unions).zip(&dedicated)
                        {
                            let window = engine.graph().window().expect("live edges remain");
                            let snapshot = engine.snapshot();
                            let run = Engine::with_threads(2)
                                .run(
                                    &member
                                        .one_shot
                                        .clone()
                                        .algorithm(Algorithm::Johnson)
                                        .granularity(Granularity::Sequential)
                                        .collect(CollectMode::Collect),
                                    &snapshot,
                                )
                                .expect("valid one-shot query");
                            let mut oracle: Vec<StreamCycle> = oracle_with_predicates(
                                &snapshot,
                                run.cycles.expect("collected"),
                                &member.predicate,
                            )
                            .iter()
                            .map(|c| {
                                StreamCycle {
                                    vertices: c.vertices.clone(),
                                    edges: c.edges.iter().map(|&id| snapshot.edge(id)).collect(),
                                }
                                .canonicalize()
                            })
                            .collect();
                            oracle.sort_by(|a, b| a.edges.cmp(&b.edges));
                            let mut survivors: Vec<StreamCycle> = union
                                .iter()
                                .filter(|c| c.edges.iter().all(|e| window.contains(e.ts)))
                                .cloned()
                                .collect();
                            survivors.sort_by(|a, b| a.edges.cmp(&b.edges));
                            assert_eq!(
                                survivors, oracle,
                                "{label} {}: streamed union diverged from the zero-pruning \
                                 oracle",
                                member.name
                            );
                        }
                        // Pushdown never builds a larger union than its
                        // post-filter twin …
                        assert!(
                            union_members[0] <= union_members[1],
                            "{label}: pushdown built a larger union ({} vs {})",
                            union_members[0],
                            union_members[1]
                        );
                        push_union_total += union_members[0];
                        post_union_total += union_members[1];
                        // … the post-filter run (pass-all hull) records no
                        // extended prunes …
                        assert_eq!(
                            prunes[1],
                            [0, 0, 0],
                            "{label}: a pass-all shared pass pruned on extended constraints"
                        );
                        // … and the pushdown prune counters depend only on
                        // the data, not the schedule.
                        for (total, n) in push_prunes_total.iter_mut().zip(prunes[0]) {
                            *total += n;
                        }
                        let fingerprint = prune_fingerprints
                            .entry((seed, retention))
                            .or_insert(prunes[0]);
                        assert_eq!(
                            *fingerprint, prunes[0],
                            "{label}: prune counters changed with the schedule"
                        );
                    }
                }
            }
        }
    }
    assert!(cycles_seen > 0, "the sweep must actually exercise cycles");
    assert!(
        push_union_total < post_union_total,
        "pushdown never pruned anything: {push_union_total} vs {post_union_total}"
    );
    let [aggregate, positional, vertex] = push_prunes_total;
    assert!(
        aggregate > 0 && positional > 0 && vertex > 0,
        "every extended pushdown class must fire somewhere in the sweep \
         (aggregate {aggregate}, positional {positional}, vertex {vertex})"
    );
}

/// The regression mirror of `fine_johnson`'s multi-worker assertion, at the
/// streaming level: a batch whose cycles all hang off one hot root must
/// engage more than one worker under fine granularity — with the steal
/// activity recorded in the batch's `RunStats`/`WorkMetrics` — where the
/// coarse driver necessarily pins to a single worker.
#[test]
fn single_hot_root_batch_engages_multiple_workers_under_fine() {
    let graph = hub_burst(2, 13);
    let expected = hub_burst_cycle_count(2, 13);
    let delta = graph.time_span().max(1);
    let edges = graph.edges();
    let (lead_in, burst) = edges.split_at(edges.len() - 1);

    let burst_report = |granularity: Granularity| {
        let mut engine = StreamingEngine::with_threads(
            delta,
            StreamingQuery::temporal(delta).granularity(granularity),
            4,
        )
        .expect("valid streaming config");
        engine.ingest(lead_in).expect("in-order lead-in");
        engine.ingest(burst).expect("in-order burst")
    };

    let fine = burst_report(Granularity::FineGrained);
    assert_eq!(fine.cycles_found, expected);
    assert_eq!(fine.stats.granularity, Some(Granularity::FineGrained));
    assert!(
        fine.stats.work.total_steals() > 0,
        "steals must be recorded in the batch WorkMetrics"
    );
    let busy = fine
        .stats
        .work
        .workers
        .iter()
        .filter(|w| w.recursive_calls > 0)
        .count();
    assert!(busy > 1, "fine granularity must engage several workers");

    // Identical results from the coarse driver, which cannot spread a
    // single-root batch.
    let coarse = burst_report(Granularity::CoarseGrained);
    assert_eq!(coarse.cycles_found, expected);
    assert_eq!(coarse.stats.work.total_steals(), 0);
}

/// The batching itself must not matter: any two batch sizes produce the same
/// union when nothing expires, and every reported cycle is structurally
/// valid.
#[test]
fn union_is_independent_of_batching() {
    let graph = uniform_temporal(RandomTemporalConfig {
        num_vertices: 15,
        num_edges: 75,
        time_span: 55,
        seed: 500,
    });
    let query = StreamingQuery::simple(25);
    let (fine, _) = replay(&graph, query.clone(), 10_000, 1, 1);
    let (coarse, _) = replay(&graph, query, 10_000, 75, 4);
    assert_eq!(fine, coarse);
    for cycle in &fine {
        assert_eq!(cycle.vertices.len(), cycle.edges.len());
        for (i, e) in cycle.edges.iter().enumerate() {
            assert_eq!(e.src, cycle.vertices[i], "edge {i} source");
            assert_eq!(
                e.dst,
                cycle.vertices[(i + 1) % cycle.vertices.len()],
                "edge {i} destination"
            );
        }
    }
}
