//! Capability tests for the constraint matrix of the paper's Table 2:
//! time-window constraints, cycle-length constraints, temporal cycles and
//! their combinations, exercised through the public API.

use parallel_cycle_enumeration::prelude::*;

/// A transaction-like graph with cycles of several lengths and time spans.
fn mixed_graph() -> TemporalGraph {
    GraphBuilder::new()
        // A fast 2-cycle: span 5.
        .add_edge(0, 1, 100)
        .add_edge(1, 0, 105)
        // A slow 2-cycle: span 500.
        .add_edge(2, 3, 200)
        .add_edge(3, 2, 700)
        // A temporal triangle: span 40.
        .add_edge(4, 5, 300)
        .add_edge(5, 6, 320)
        .add_edge(6, 4, 340)
        // A non-temporal triangle (timestamps out of order), span 40.
        .add_edge(7, 8, 460)
        .add_edge(8, 9, 440)
        .add_edge(9, 7, 420)
        // A 4-cycle, span 30.
        .add_edge(10, 11, 600)
        .add_edge(11, 12, 610)
        .add_edge(12, 13, 620)
        .add_edge(13, 10, 630)
        .build()
}

fn count_simple(graph: &TemporalGraph, window: Option<i64>, max_len: Option<usize>) -> u64 {
    let mut e = CycleEnumerator::new()
        .granularity(Granularity::FineGrained)
        .threads(2);
    if let Some(w) = window {
        e = e.window(w);
    }
    if let Some(l) = max_len {
        e = e.max_len(l);
    }
    e.count_simple(graph)
}

fn count_temporal(graph: &TemporalGraph, window: i64, max_len: Option<usize>) -> u64 {
    let mut e = CycleEnumerator::new()
        .granularity(Granularity::FineGrained)
        .threads(2)
        .window(window);
    if let Some(l) = max_len {
        e = e.max_len(l);
    }
    e.count_temporal(graph)
}

#[test]
fn unconstrained_enumeration_finds_every_cycle() {
    let g = mixed_graph();
    assert_eq!(count_simple(&g, None, None), 5);
}

#[test]
fn time_window_constraints_filter_by_span() {
    let g = mixed_graph();
    // Window of 50 excludes only the slow 2-cycle (span 500).
    assert_eq!(count_simple(&g, Some(50), None), 4);
    // Window of 10 keeps only the fast 2-cycle.
    assert_eq!(count_simple(&g, Some(10), None), 1);
    // Window of 1000 keeps everything.
    assert_eq!(count_simple(&g, Some(1000), None), 5);
}

#[test]
fn cycle_length_constraints_filter_by_hop_count() {
    let g = mixed_graph();
    assert_eq!(count_simple(&g, None, Some(2)), 2);
    assert_eq!(count_simple(&g, None, Some(3)), 4);
    assert_eq!(count_simple(&g, None, Some(4)), 5);
}

#[test]
fn combined_window_and_length_constraints() {
    let g = mixed_graph();
    // Span ≤ 50 and at most 3 hops: fast 2-cycle + both triangles.
    assert_eq!(count_simple(&g, Some(50), Some(3)), 3);
    // Span ≤ 50 and at most 2 hops: only the fast 2-cycle.
    assert_eq!(count_simple(&g, Some(50), Some(2)), 1);
}

#[test]
fn temporal_cycles_require_increasing_timestamps() {
    let g = mixed_graph();
    // The non-temporal triangle (7,8,9) and the slow 2-cycle drop out at
    // window 50; the rest are temporal.
    assert_eq!(count_temporal(&g, 1000, None), 4);
    assert_eq!(count_temporal(&g, 50, None), 3);
    assert_eq!(count_temporal(&g, 50, Some(3)), 2);
}

#[test]
fn constraints_agree_across_algorithms_and_granularities() {
    let g = mixed_graph();
    for algo in [Algorithm::Johnson, Algorithm::ReadTarjan] {
        for gran in [
            Granularity::Sequential,
            Granularity::CoarseGrained,
            Granularity::FineGrained,
        ] {
            let count = CycleEnumerator::new()
                .algorithm(algo)
                .granularity(gran)
                .threads(3)
                .window(50)
                .max_len(3)
                .count_simple(&g);
            assert_eq!(count, 3, "{algo:?}/{gran:?}");
        }
    }
}

#[test]
fn self_loop_reporting_is_opt_in() {
    let g = GraphBuilder::new()
        .add_edge(0, 0, 1)
        .add_edge(1, 2, 2)
        .add_edge(2, 1, 3)
        .build();
    let without = CycleEnumerator::new()
        .granularity(Granularity::Sequential)
        .count_simple(&g);
    assert_eq!(without, 1);
    let with = CycleEnumerator::new()
        .granularity(Granularity::Sequential)
        .include_self_loops(true)
        .count_simple(&g);
    assert_eq!(with, 2);
}

#[test]
fn workload_datasets_enumerate_consistently_at_small_scale() {
    // End-to-end check over the workload crate: a down-scaled dataset
    // enumerates the same cycles with the coarse and fine algorithms.
    let spec = dataset(DatasetId::CO);
    let mut small = spec;
    small.num_edges = 1_500;
    small.num_vertices = 150;
    let workload = small.build();
    let coarse = CycleEnumerator::new()
        .granularity(Granularity::CoarseGrained)
        .threads(4)
        .window(spec.delta_temporal)
        .count_temporal(&workload.graph);
    let fine = CycleEnumerator::new()
        .granularity(Granularity::FineGrained)
        .threads(4)
        .window(spec.delta_temporal)
        .count_temporal(&workload.graph);
    assert_eq!(coarse, fine);
    assert!(
        fine > 0,
        "the CollegeMsg stand-in should contain temporal cycles"
    );
}
