//! Cross-algorithm, cross-granularity equivalence tests through the public
//! API, including seeded randomised sweeps over generated temporal graphs
//! (property-based tests with a deterministic, offline case source).
//!
//! The central invariant of the whole project: every algorithm (Tiernan,
//! Johnson, Read-Tarjan), at every granularity (sequential, coarse-grained,
//! fine-grained) and any thread count, enumerates exactly the same set of
//! cycles. The reference side of every comparison is the shared oracle
//! module `pce_core::testing` — one oracle, used everywhere.

use parallel_cycle_enumeration::core::testing;
use parallel_cycle_enumeration::prelude::*;

fn canonical_simple(
    graph: &TemporalGraph,
    algo: Algorithm,
    gran: Granularity,
    delta: i64,
) -> Vec<Cycle> {
    let result = CycleEnumerator::new()
        .algorithm(algo)
        .granularity(gran)
        .threads(4)
        .window(delta)
        .collect_cycles(true)
        .enumerate_simple(graph);
    let mut cycles: Vec<Cycle> = result
        .cycles
        .unwrap()
        .iter()
        .map(|c| c.canonicalize())
        .collect();
    cycles.sort_by(|a, b| a.edges.cmp(&b.edges));
    cycles
}

fn canonical_temporal(
    graph: &TemporalGraph,
    algo: Algorithm,
    gran: Granularity,
    delta: i64,
) -> Vec<Cycle> {
    let result = CycleEnumerator::new()
        .algorithm(algo)
        .granularity(gran)
        .threads(4)
        .window(delta)
        .collect_cycles(true)
        .enumerate_temporal(graph);
    let mut cycles: Vec<Cycle> = result
        .cycles
        .unwrap()
        .iter()
        .map(|c| c.canonicalize())
        .collect();
    cycles.sort_by(|a, b| a.edges.cmp(&b.edges));
    cycles
}

#[test]
fn gadget_graphs_agree_across_every_configuration() {
    let graphs = vec![
        generators::fig4a_exponential_cycles(9),
        generators::fig5a_infeasible_regions(6),
        generators::fig3a_pruning_gadget(4, 5),
        generators::complete_digraph(5),
        generators::directed_cycle(7),
    ];
    for graph in &graphs {
        let reference = canonical_simple(
            graph,
            Algorithm::Johnson,
            Granularity::Sequential,
            i64::MAX / 4,
        );
        for algo in [
            Algorithm::Johnson,
            Algorithm::ReadTarjan,
            Algorithm::Tiernan,
        ] {
            for gran in [
                Granularity::Sequential,
                Granularity::CoarseGrained,
                Granularity::FineGrained,
            ] {
                let got = canonical_simple(graph, algo, gran, i64::MAX / 4);
                assert_eq!(got, reference, "{algo:?}/{gran:?}");
            }
        }
    }
}

#[test]
fn planted_rings_found_by_every_temporal_configuration() {
    use parallel_cycle_enumeration::graph::generators::{transaction_rings, TransactionRingConfig};
    let cfg = TransactionRingConfig {
        num_accounts: 300,
        background_edges: 900,
        num_rings: 12,
        ring_len: (3, 5),
        time_span: 200_000,
        ring_span: 2_500,
        seed: 77,
    };
    let (graph, planted) = transaction_rings(cfg);
    let reference = canonical_temporal(
        &graph,
        Algorithm::Johnson,
        Granularity::Sequential,
        cfg.ring_span,
    );
    assert!(reference.len() >= planted);
    for algo in [Algorithm::Johnson, Algorithm::ReadTarjan] {
        for gran in [Granularity::CoarseGrained, Granularity::FineGrained] {
            let got = canonical_temporal(&graph, algo, gran, cfg.ring_span);
            assert_eq!(got, reference, "{algo:?}/{gran:?}");
        }
    }
}

#[test]
fn fine_grained_results_stable_across_repeated_runs() {
    // Work stealing makes execution nondeterministic; results must not be.
    let graph = generators::power_law_temporal(generators::RandomTemporalConfig {
        num_vertices: 60,
        num_edges: 260,
        time_span: 150,
        seed: 9009,
    });
    let reference = canonical_simple(&graph, Algorithm::Johnson, Granularity::Sequential, 20);
    for run in 0..5 {
        let got = canonical_simple(&graph, Algorithm::Johnson, Granularity::FineGrained, 20);
        assert_eq!(got, reference, "run {run}");
    }
}

/// All three algorithms agree with the shared brute-force oracle on random
/// sparse temporal multigraphs, sequentially and in parallel.
#[test]
fn prop_all_algorithms_agree() {
    for seed in 0..24u64 {
        let (graph, delta) = testing::random_case(1_000 + seed, 14, 70, 60);
        let reference = testing::oracle_simple(&graph, &SimpleCycleOptions::with_window(delta));
        for algo in [
            Algorithm::Johnson,
            Algorithm::ReadTarjan,
            Algorithm::Tiernan,
        ] {
            let got = canonical_simple(&graph, algo, Granularity::Sequential, delta);
            assert_eq!(got, reference, "seed {seed} {algo:?}");
        }
        let fine = canonical_simple(&graph, Algorithm::Johnson, Granularity::FineGrained, delta);
        assert_eq!(fine, reference, "seed {seed} fine Johnson");
        let fine_rt = canonical_simple(
            &graph,
            Algorithm::ReadTarjan,
            Granularity::FineGrained,
            delta,
        );
        assert_eq!(fine_rt, reference, "seed {seed} fine Read-Tarjan");
        // The temporal enumeration agrees with its own independent oracle.
        let temporal =
            canonical_temporal(&graph, Algorithm::Johnson, Granularity::FineGrained, delta);
        assert_eq!(
            temporal,
            testing::oracle_temporal(&graph, delta),
            "seed {seed} temporal"
        );
    }
}

/// Every reported simple cycle is structurally valid, vertex-disjoint and
/// fits in the requested window; every reported temporal cycle is
/// additionally strictly increasing in time.
#[test]
fn prop_reported_cycles_are_valid() {
    for seed in 0..24u64 {
        let (graph, delta) = testing::random_case(2_000 + seed, 14, 70, 60);
        let simple = canonical_simple(&graph, Algorithm::Johnson, Granularity::FineGrained, delta);
        for cycle in &simple {
            assert!(
                cycle.validate(&graph).is_ok(),
                "seed {seed}: {:?}",
                cycle.validate(&graph)
            );
            assert!(cycle.time_span(&graph) <= delta, "seed {seed}");
        }
        let temporal =
            canonical_temporal(&graph, Algorithm::Johnson, Granularity::FineGrained, delta);
        for cycle in &temporal {
            assert!(cycle.validate(&graph).is_ok(), "seed {seed}");
            assert!(cycle.is_temporal(&graph), "seed {seed}");
            assert!(cycle.time_span(&graph) <= delta, "seed {seed}");
        }
        // Temporal cycles are a subset of simple cycles under the same window.
        assert!(temporal.len() <= simple.len(), "seed {seed}");
    }
}

/// The temporal count from the bundled (path-bundling) counter equals the
/// unbundled enumeration count.
#[test]
fn prop_bundled_count_matches_enumeration() {
    use parallel_cycle_enumeration::core::bundle::bundled_temporal_count;
    use parallel_cycle_enumeration::core::TemporalCycleOptions;
    for seed in 0..24u64 {
        let (graph, delta) = testing::random_case(3_000 + seed, 10, 60, 30);
        let (bundled, _) =
            bundled_temporal_count(&graph, &TemporalCycleOptions::with_window(delta));
        let enumerated =
            canonical_temporal(&graph, Algorithm::Johnson, Granularity::Sequential, delta);
        assert_eq!(bundled, enumerated.len() as u64, "seed {seed}");
    }
}
