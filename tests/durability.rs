//! Crash-recovery equivalence: the durability layer must make a restart
//! invisible in the per-query reports.
//!
//! The sweep runs a seeded multi-subscription stream (attributed edges,
//! predicate-bearing subscriptions, mid-stream subscription churn, segment
//! rotations and cadence checkpoints) through a
//! [`DurableMultiStreamingEngine`], then simulates a crash at **every byte**
//! of the segment log — every record boundary and every mid-record torn
//! write — recovers, finishes the stream, and asserts that the replayed +
//! continued per-query reports are byte-identical to the uninterrupted run,
//! and that the final registry (ids, queries, lifetime totals) and window
//! match exactly. Both store backends are swept.
//!
//! The crash model: a cut at byte `c` keeps the prefix `[0, c)` of the log's
//! global append order (segments in id order) and exactly the checkpoints
//! written while the log was ≤ `c` bytes — the states a real crash can leave
//! behind under append-then-checkpoint write ordering.
//!
//! The base seed comes from `PCE_SWEEP_SEED` (CI passes one per run and
//! echoes it), so any red run replays locally.

use parallel_cycle_enumeration::core::testing::{random_temporal_stream, StreamSpec};
use parallel_cycle_enumeration::prelude::*;

const RETENTION: i64 = 40;

fn sweep_seed() -> u64 {
    std::env::var("PCE_SWEEP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000)
}

fn sweep_stream(seed: u64, batch_edges: usize) -> Vec<Vec<TemporalEdge>> {
    random_temporal_stream(
        seed,
        &StreamSpec {
            num_vertices: 18,
            num_edges: 100,
            batch_edges,
            duplicate_ts: 0.15,
            burstiness: 0.1,
            out_of_order: true,
        },
    )
}

/// Deterministically attributes the sweep stream (same mixing as the
/// streaming sweep): amounts roughly uniform in `0..100_000`, labels in
/// `0..8`, derived from each edge's endpoints and timestamp — so the
/// predicate-bearing subscriptions below have attributes to filter on and
/// every crash cut replays the identical attributed stream.
fn attribute_stream(batches: &[Vec<TemporalEdge>]) -> Vec<Vec<TemporalEdge>> {
    batches
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|e| {
                    let mix = u64::from(e.src) * 31 + u64::from(e.dst) * 7 + (e.ts as u64) * 13 + 5;
                    TemporalEdge::with_attrs(
                        e.src,
                        e.dst,
                        e.ts,
                        (mix * 997) % 100_000,
                        ((mix >> 3) % 8) as u16,
                    )
                })
                .collect()
        })
        .collect()
}

fn sort_canonical(cycles: &[StreamCycle]) -> Vec<StreamCycle> {
    let mut canon: Vec<StreamCycle> = cycles.iter().map(StreamCycle::canonicalize).collect();
    canon.sort_by(|a, b| a.edges.cmp(&b.edges));
    canon
}

/// The deterministic projection of one batch's multi-query report: per query
/// (in subscription order) its id, count, and canonicalised cycles. Replay
/// equivalence means these are byte-identical; wall-clock fields and graph
/// lifetime counters are explicitly not part of the contract.
type Projection = Vec<(u64, u64, Vec<StreamCycle>)>;

fn project(report: &MultiBatchReport) -> Projection {
    report
        .reports
        .iter()
        .map(|r| {
            assert_eq!(r.batch, report.batch);
            (r.query.as_u64(), r.cycles_found, sort_canonical(&r.cycles))
        })
        .collect()
}

/// One step of the reference run, with the log size after it — the "crash
/// clock" deciding whether the op happened before a given cut.
enum Op {
    Subscribe { query: StreamingQuery, id: QueryId },
    Ingest { batch: usize },
}

struct OpRecord {
    op: Op,
    log_bytes_after: u64,
}

/// Everything the sweep compares against, captured from one uninterrupted
/// durable run.
struct Reference {
    batches: Vec<Vec<TemporalEdge>>,
    ops: Vec<OpRecord>,
    /// Projection of the reference report of batch `k`.
    reports: Vec<Projection>,
    /// `(seq, log bytes when written)` for every checkpoint.
    checkpoint_bytes: Vec<(u64, u64)>,
    /// Global byte offsets where a record ends (record boundaries).
    record_ends: Vec<u64>,
    store: MemoryStore,
    final_snaps: Vec<SubscriptionSnapshot>,
    final_live_edges: Vec<TemporalEdge>,
    final_watermark: i64,
}

fn reference_run(cfg: &DurableConfig) -> Reference {
    let batches = attribute_stream(&sweep_stream(sweep_seed(), 12));
    let mut engine = DurableMultiStreamingEngine::create(MemoryStore::new(), RETENTION, cfg)
        .expect("create durable engine");

    let mut ops = Vec::new();
    let mut reports = Vec::new();
    let mut checkpoint_bytes: Vec<(u64, u64)> = vec![(0, 0)];
    let mut record_ends = Vec::new();
    let mut seen_ckpts = 1usize;

    let record_new_checkpoints = |engine: &DurableMultiStreamingEngine<MemoryStore>,
                                  seen: &mut usize,
                                  out: &mut Vec<(u64, u64)>| {
        let seqs = engine.log().store().checkpoint_seqs().unwrap();
        for &seq in &seqs[*seen..] {
            out.push((seq, engine.log().total_bytes()));
        }
        *seen = seqs.len();
    };

    let subscribe = |engine: &mut DurableMultiStreamingEngine<MemoryStore>,
                     ops: &mut Vec<OpRecord>,
                     seen: &mut usize,
                     ckpts: &mut Vec<(u64, u64)>,
                     query: StreamingQuery| {
        let id = engine.subscribe(query.clone()).expect("subscribe");
        record_new_checkpoints(engine, seen, ckpts);
        ops.push(OpRecord {
            op: Op::Subscribe { query, id },
            log_bytes_after: engine.log().total_bytes(),
        });
    };

    subscribe(
        &mut engine,
        &mut ops,
        &mut seen_ckpts,
        &mut checkpoint_bytes,
        StreamingQuery::temporal(RETENTION),
    );
    subscribe(
        &mut engine,
        &mut ops,
        &mut seen_ckpts,
        &mut checkpoint_bytes,
        // A predicate-bearing subscription in the sweep itself: its amount
        // floor and label deny-list must survive every crash cut (format v2
        // serialises them), or the recovered reports diverge.
        StreamingQuery::simple(25).max_len(5).predicate(
            EdgePredicate::pass_all()
                .min_amount(20_000)
                .labels(LabelFilter::deny(vec![0])),
        ),
    );

    for (k, batch) in batches.iter().enumerate() {
        if k == 3 {
            // Mid-stream churn: a registry checkpoint between rotations —
            // this late subscription carries a full extended-predicate
            // profile (total floor + vertex deny-list), so every crash cut
            // also proves the v4 checkpoint fields replay exactly.
            subscribe(
                &mut engine,
                &mut ops,
                &mut seen_ckpts,
                &mut checkpoint_bytes,
                StreamingQuery::temporal(15)
                    .collect(CollectMode::Count)
                    .cycle_predicate(
                        CyclePredicate::pass_all()
                            .edge(EdgePredicate::pass_all().min_amount(50_000))
                            .total_min(120_000)
                            .vertices(VertexFilter::deny(vec![17])),
                    ),
            );
        }
        let report = engine.ingest(batch).expect("in-order ingest");
        assert_eq!(report.batch, k as u64);
        record_new_checkpoints(&engine, &mut seen_ckpts, &mut checkpoint_bytes);
        record_ends.push(engine.log().total_bytes());
        reports.push(project(&report));
        ops.push(OpRecord {
            op: Op::Ingest { batch: k },
            log_bytes_after: engine.log().total_bytes(),
        });
    }

    assert!(
        engine.segments_rotated() > 0,
        "sweep must exercise segment rotation (shrink segment_bytes)"
    );
    assert!(
        engine.checkpoints_written() > 4,
        "sweep must exercise churn + rotation + cadence checkpoints"
    );

    let final_snaps = engine.engine().subscription_snapshots();
    let final_live_edges = engine.engine().graph().live_edges().to_vec();
    let final_watermark = engine.engine().graph().watermark();
    Reference {
        batches,
        ops,
        reports,
        checkpoint_bytes,
        record_ends,
        store: engine.into_store(),
        final_snaps,
        final_live_edges,
        final_watermark,
    }
}

/// Builds the store a crash at byte `cut` leaves behind, into `empty`.
fn cut_store<S: SegmentStore>(reference: &Reference, cut: u64, empty: &mut S) {
    let mut consumed = 0u64;
    for id in reference.store.segment_ids().unwrap() {
        let bytes = reference.store.read_segment(id).unwrap();
        if consumed >= cut {
            break;
        }
        let keep = ((cut - consumed) as usize).min(bytes.len());
        empty.append_segment(id, &bytes[..keep]).unwrap();
        consumed += bytes.len() as u64;
    }
    for &(seq, at) in &reference.checkpoint_bytes {
        if at <= cut {
            let bytes = reference.store.read_checkpoint(seq).unwrap();
            empty.write_checkpoint(seq, &bytes).unwrap();
        }
    }
}

/// Recovers from `store`, finishes the stream, and asserts byte-identical
/// reports and final state. Returns the recovery info for sweep-level
/// coverage assertions.
fn recover_and_finish<S: SegmentStore>(
    reference: &Reference,
    cut: u64,
    store: S,
    cfg: &DurableConfig,
) -> RecoveryReport {
    let (mut engine, info) = recover(store, cfg).expect("recovery must always succeed");

    // How many batches the cut log fully holds, and where its last intact
    // record boundary lies.
    let full_batches = reference
        .record_ends
        .iter()
        .filter(|&&end| end <= cut)
        .count() as u64;
    let last_boundary = reference
        .record_ends
        .iter()
        .copied()
        .filter(|&end| end <= cut)
        .max()
        .unwrap_or(0);

    assert_eq!(
        info.truncated_bytes,
        cut - last_boundary,
        "cut {cut}: torn tail is everything past the last record boundary"
    );
    assert_eq!(info.dropped_batches, 0, "cut {cut}");
    assert!(info.checkpoint_batches <= full_batches, "cut {cut}");
    assert_eq!(
        info.replayed.len() as u64,
        full_batches - info.checkpoint_batches,
        "cut {cut}: replay covers checkpoint → end of intact log"
    );
    for replayed in &info.replayed {
        assert_eq!(
            project(replayed),
            reference.reports[replayed.batch as usize],
            "cut {cut}: replayed batch {} diverged (seed {})",
            replayed.batch,
            sweep_seed()
        );
    }

    // Finish the stream: redo every op the crash wiped out, in order.
    for op in &reference.ops {
        match &op.op {
            Op::Subscribe { query, id } => {
                if op.log_bytes_after <= cut {
                    assert!(
                        engine.engine().subscriptions().any(|(sid, _)| sid == *id),
                        "cut {cut}: durable subscription {id} missing after recovery"
                    );
                } else {
                    let redone = engine.subscribe(query.clone()).expect("re-subscribe");
                    assert_eq!(
                        redone, *id,
                        "cut {cut}: persisted next-id must reproduce the original id"
                    );
                }
            }
            Op::Ingest { batch } => {
                if (*batch as u64) < full_batches {
                    continue;
                }
                let report = engine
                    .ingest(&reference.batches[*batch])
                    .expect("continued ingest");
                assert_eq!(report.batch, *batch as u64, "cut {cut}");
                assert_eq!(
                    project(&report),
                    reference.reports[*batch],
                    "cut {cut}: continued batch {batch} diverged (seed {})",
                    sweep_seed()
                );
            }
        }
    }

    assert_eq!(
        engine.engine().subscription_snapshots(),
        reference.final_snaps,
        "cut {cut}: final registry (ids, queries, lifetime totals)"
    );
    assert_eq!(
        engine.engine().graph().live_edges(),
        &reference.final_live_edges[..],
        "cut {cut}: final window contents"
    );
    assert_eq!(
        engine.engine().graph().watermark(),
        reference.final_watermark,
        "cut {cut}"
    );
    info
}

fn sweep_cfg() -> DurableConfig {
    DurableConfig {
        // Small segments force rotations mid-sweep; a cadence checkpoint
        // every 3 batches lands checkpoints away from rotation boundaries.
        segment_bytes: 256,
        checkpoint_every_batches: 3,
        threads: 1,
        ..DurableConfig::default()
    }
}

/// Every byte of the log is a crash point — MemoryStore backend.
#[test]
fn crash_sweep_every_cut_point_memory() {
    let cfg = sweep_cfg();
    let reference = reference_run(&cfg);
    let total = reference.store.log_bytes();
    let mut torn_cuts = 0u64;
    let mut mid_checkpoint_coverage = false;
    for cut in 0..=total {
        let mut store = MemoryStore::new();
        cut_store(&reference, cut, &mut store);
        let info = recover_and_finish(&reference, cut, store, &cfg);
        if info.truncated_bytes > 0 {
            torn_cuts += 1;
        }
        if info.checkpoint_seq > 0 && info.checkpoint_batches > 0 {
            mid_checkpoint_coverage = true;
        }
    }
    assert!(torn_cuts > 0, "sweep must include torn-tail cuts");
    assert!(
        mid_checkpoint_coverage,
        "sweep must recover from mid-stream checkpoints, not only checkpoint 0"
    );
}

/// The same sweep over the filesystem backend — every record boundary and
/// every mid-record torn write (plus the empty store), against real files,
/// truncations and renames.
#[test]
fn crash_sweep_record_boundaries_and_torn_writes_fs() {
    let cfg = sweep_cfg();
    let reference = reference_run(&cfg);
    let base = std::env::temp_dir().join(format!(
        "pce_durability_sweep_{}_{}",
        std::process::id(),
        sweep_seed()
    ));
    std::fs::remove_dir_all(&base).ok();

    let mut cuts: Vec<u64> = vec![0];
    let mut prev = 0u64;
    for &end in &reference.record_ends {
        // A torn write inside the record (past its header) and the clean
        // boundary after it.
        cuts.push(prev + (end - prev) / 2);
        cuts.push(end.saturating_sub(1));
        cuts.push(end);
        prev = end;
    }
    for (i, &cut) in cuts.iter().enumerate() {
        let dir = base.join(format!("cut-{i}"));
        let mut store = FsStore::open(&dir).expect("fs store");
        cut_store(&reference, cut, &mut store);
        recover_and_finish(&reference, cut, store, &cfg);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

/// The uninterrupted durable engine must itself be invisible relative to a
/// plain in-memory engine: logging is an implementation detail of ingest.
#[test]
fn durable_ingest_matches_plain_engine() {
    let cfg = sweep_cfg();
    let batches = attribute_stream(&sweep_stream(sweep_seed() ^ 0xD0_D0, 9));
    let mut plain = MultiStreamingEngine::with_threads(RETENTION, 1).unwrap();
    let mut durable =
        DurableMultiStreamingEngine::create(MemoryStore::new(), RETENTION, &cfg).unwrap();
    let queries = [
        StreamingQuery::temporal(RETENTION),
        StreamingQuery::simple(20)
            .predicate(EdgePredicate::pass_all().labels(LabelFilter::allow(vec![1, 2, 5]))),
    ];
    for q in &queries {
        let a = plain.subscribe(q.clone()).unwrap();
        let b = durable.subscribe(q.clone()).unwrap();
        assert_eq!(a, b);
    }
    for batch in &batches {
        let a = plain.ingest(batch).unwrap();
        let b = durable.ingest(batch).unwrap();
        assert_eq!(project(&a), project(&b));
    }
    assert_eq!(
        plain.subscription_snapshots(),
        durable.engine().subscription_snapshots()
    );
}

/// A rejected batch (out-of-order) must leave the log exactly as it was:
/// log-then-apply rolls the record back, and recovery of that store replays
/// only acknowledged batches.
#[test]
fn rejected_batch_is_rolled_back_from_the_log() {
    let cfg = sweep_cfg();
    let mut durable =
        DurableMultiStreamingEngine::create(MemoryStore::new(), RETENTION, &cfg).unwrap();
    let q = durable
        .subscribe(StreamingQuery::temporal(RETENTION))
        .unwrap();
    durable
        .ingest(&[TemporalEdge::new(0, 1, 100), TemporalEdge::new(1, 2, 110)])
        .unwrap();
    let bytes_before = durable.log().total_bytes();
    let err = durable
        .ingest(&[TemporalEdge::new(2, 0, 50)])
        .expect_err("below watermark");
    assert!(matches!(
        err,
        StoreError::Streaming(StreamingError::Stream(_))
    ));
    assert_eq!(durable.log().total_bytes(), bytes_before);

    // The ring still closes afterwards, and survives recovery.
    let report = durable.ingest(&[TemporalEdge::new(2, 0, 120)]).unwrap();
    assert_eq!(report.report(q).unwrap().cycles_found, 1);
    let (recovered, info) = recover(durable.into_store(), &cfg).unwrap();
    assert_eq!(info.dropped_batches, 0);
    assert_eq!(recovered.engine().total_cycles(q), Some(1));
    assert_eq!(recovered.engine().batches(), 2);
}

/// Re-encodes a checkpoint in the **v1** on-disk format: identical through
/// the registry header, per-subscription records without the trailing
/// predicate fields. Only meaningful for pass-all registries (v1 could not
/// express anything else).
fn encode_v1(ck: &Checkpoint) -> Vec<u8> {
    use parallel_cycle_enumeration::graph::io::crc32;
    let mut buf = Vec::new();
    buf.extend_from_slice(b"PCEC");
    buf.extend_from_slice(&1u16.to_le_bytes());
    buf.extend_from_slice(&ck.seq.to_le_bytes());
    buf.extend_from_slice(&ck.batches.to_le_bytes());
    buf.extend_from_slice(&ck.watermark.to_le_bytes());
    buf.extend_from_slice(&ck.retention.to_le_bytes());
    buf.extend_from_slice(&ck.compaction_base.to_le_bytes());
    buf.push(match ck.granularity {
        Granularity::Sequential => 0,
        Granularity::CoarseGrained => 1,
        Granularity::FineGrained => 2,
    });
    buf.push(match ck.strategy {
        FanOutStrategy::Naive => 0,
        FanOutStrategy::Indexed => 1,
    });
    buf.extend_from_slice(&ck.next_query_id.to_le_bytes());
    buf.extend_from_slice(&(ck.subscriptions.len() as u32).to_le_bytes());
    for sub in &ck.subscriptions {
        let q = &sub.query;
        assert!(
            q.edge_predicate().is_pass_all(),
            "v1 cannot express a non-trivial predicate"
        );
        buf.extend_from_slice(&sub.id.as_u64().to_le_bytes());
        buf.push(match q.kind() {
            CycleKind::Simple => 0,
            CycleKind::Temporal => 1,
        });
        buf.push(match q.requested_granularity() {
            Granularity::Sequential => 0,
            Granularity::CoarseGrained => 1,
            Granularity::FineGrained => 2,
        });
        buf.extend_from_slice(&q.window_delta().to_le_bytes());
        let max_len = q.max_len_bound().map_or(u64::MAX, |n| n as u64);
        buf.extend_from_slice(&max_len.to_le_bytes());
        buf.push(q.includes_self_loops() as u8);
        buf.push(match q.collect_mode() {
            CollectMode::Count => 0,
            CollectMode::Collect => 1,
        });
        buf.extend_from_slice(&sub.total_cycles.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Re-encodes a checkpoint in the **v2** on-disk format: v1 plus the
/// per-subscription predicate fields, but no shard layout anywhere — neither
/// the engine-level field nor the per-query one existed before v3.
fn encode_v2(ck: &Checkpoint) -> Vec<u8> {
    use parallel_cycle_enumeration::graph::io::crc32;
    let mut buf = Vec::new();
    buf.extend_from_slice(b"PCEC");
    buf.extend_from_slice(&2u16.to_le_bytes());
    buf.extend_from_slice(&ck.seq.to_le_bytes());
    buf.extend_from_slice(&ck.batches.to_le_bytes());
    buf.extend_from_slice(&ck.watermark.to_le_bytes());
    buf.extend_from_slice(&ck.retention.to_le_bytes());
    buf.extend_from_slice(&ck.compaction_base.to_le_bytes());
    buf.push(match ck.granularity {
        Granularity::Sequential => 0,
        Granularity::CoarseGrained => 1,
        Granularity::FineGrained => 2,
    });
    buf.push(match ck.strategy {
        FanOutStrategy::Naive => 0,
        FanOutStrategy::Indexed => 1,
    });
    buf.extend_from_slice(&ck.next_query_id.to_le_bytes());
    buf.extend_from_slice(&(ck.subscriptions.len() as u32).to_le_bytes());
    for sub in &ck.subscriptions {
        let q = &sub.query;
        buf.extend_from_slice(&sub.id.as_u64().to_le_bytes());
        buf.push(match q.kind() {
            CycleKind::Simple => 0,
            CycleKind::Temporal => 1,
        });
        buf.push(match q.requested_granularity() {
            Granularity::Sequential => 0,
            Granularity::CoarseGrained => 1,
            Granularity::FineGrained => 2,
        });
        buf.extend_from_slice(&q.window_delta().to_le_bytes());
        let max_len = q.max_len_bound().map_or(u64::MAX, |n| n as u64);
        buf.extend_from_slice(&max_len.to_le_bytes());
        buf.push(q.includes_self_loops() as u8);
        buf.push(match q.collect_mode() {
            CollectMode::Count => 0,
            CollectMode::Collect => 1,
        });
        buf.extend_from_slice(&sub.total_cycles.to_le_bytes());
        let pred = q.edge_predicate();
        buf.extend_from_slice(&pred.amount_min().to_le_bytes());
        buf.extend_from_slice(&pred.amount_max().to_le_bytes());
        let labels = |buf: &mut Vec<u8>, set: &[u16]| {
            buf.extend_from_slice(&(set.len() as u32).to_le_bytes());
            for label in set {
                buf.extend_from_slice(&label.to_le_bytes());
            }
        };
        match pred.label_filter() {
            LabelFilter::Any => buf.push(0),
            LabelFilter::Allow(set) => {
                buf.push(1);
                labels(&mut buf, set);
            }
            LabelFilter::Deny(set) => {
                buf.push(2);
                labels(&mut buf, set);
            }
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// A store whose newest checkpoint predates the sharded window (v2: predicate
/// fields, no shard layout) must recover as the single-shard engine it
/// described — `S = 1` at the engine and on every restored query — keep
/// serving byte-identical reports, and roundtrip through the **next** crash
/// in the current v3 format.
#[test]
fn v2_checkpoint_store_recovers_as_single_shard() {
    let cfg = DurableConfig {
        // No cadence checkpoints: the hand-planted v2 checkpoint must be the
        // newest one recovery sees.
        checkpoint_every_batches: u64::MAX,
        threads: 1,
        ..DurableConfig::default()
    };
    let batches = attribute_stream(&sweep_stream(sweep_seed() ^ 0x02F0, 10));
    let split = batches.len() / 2;

    // The pre-upgrade run, shadowed by a plain in-memory twin for the
    // reference reports. Predicate-bearing subscriptions: v2 holds them.
    let mut durable =
        DurableMultiStreamingEngine::create(MemoryStore::new(), RETENTION, &cfg).unwrap();
    let mut plain = MultiStreamingEngine::with_threads(RETENTION, 1).unwrap();
    for q in [
        StreamingQuery::temporal(RETENTION),
        StreamingQuery::simple(25).max_len(5).predicate(
            EdgePredicate::pass_all()
                .min_amount(20_000)
                .labels(LabelFilter::deny(vec![0])),
        ),
    ] {
        let a = durable.subscribe(q.clone()).unwrap();
        let b = plain.subscribe(q).unwrap();
        assert_eq!(a, b);
    }
    for batch in &batches[..split] {
        let a = durable.ingest(batch).unwrap();
        let b = plain.ingest(batch).unwrap();
        assert_eq!(project(&a), project(&b));
    }
    durable.checkpoint_now().unwrap();

    // Downgrade the newest checkpoint to the v2 format, one sequence number
    // ahead so recovery must pick it.
    let seq = *durable
        .log()
        .store()
        .checkpoint_seqs()
        .unwrap()
        .last()
        .unwrap();
    let mut store = durable.into_store();
    let mut ck = Checkpoint::decode(&store.read_checkpoint(seq).unwrap()).unwrap();
    ck.seq += 1;
    store.write_checkpoint(ck.seq, &encode_v2(&ck)).unwrap();

    // Recovery: no shard layout in the checkpoint means the unsharded engine
    // it described — S = 1 everywhere — and the stream continues
    // byte-identically, predicates intact.
    let (mut recovered, info) = recover(store, &cfg).unwrap();
    assert_eq!(info.checkpoint_seq, ck.seq, "the v2 checkpoint is newest");
    assert_eq!(info.dropped_batches, 0);
    assert!(
        recovered.engine().shard_spec().is_single(),
        "pre-v3 checkpoints recover as a single shard"
    );
    for (_, q) in recovered.engine().subscriptions() {
        assert!(
            q.shard_spec().is_single(),
            "v2 records decode to single-shard queries"
        );
    }
    assert_eq!(
        recovered.engine().subscription_snapshots(),
        plain.subscription_snapshots(),
        "the upgraded registry matches the uninterrupted twin"
    );
    for batch in &batches[split..] {
        let x = recovered.ingest(batch).unwrap();
        let y = plain.ingest(batch).unwrap();
        assert_eq!(project(&x), project(&y));
    }

    // … and survives the *next* crash via the current (v3) format.
    recovered.checkpoint_now().unwrap();
    let expected = recovered.engine().subscription_snapshots();
    let (after, _) = recover(recovered.into_store(), &cfg).unwrap();
    assert!(after.engine().shard_spec().is_single());
    assert_eq!(
        after.engine().subscription_snapshots(),
        expected,
        "the registry roundtrips through the post-upgrade checkpoint"
    );
}

/// A store whose newest checkpoint was written by the previous release (v1:
/// no predicate fields) must recover with every query given the pass-all
/// predicate, keep serving byte-identical reports, accept predicate-bearing
/// subscriptions after the upgrade, and roundtrip them through the **next**
/// crash in the current format.
#[test]
fn v1_checkpoint_store_upgrades_through_recovery() {
    let cfg = DurableConfig {
        // No cadence checkpoints: the hand-planted v1 checkpoint must be the
        // newest one recovery sees.
        checkpoint_every_batches: u64::MAX,
        threads: 1,
        ..DurableConfig::default()
    };
    let batches = attribute_stream(&sweep_stream(sweep_seed() ^ 0x0171, 10));
    let split = batches.len() / 2;

    // The pre-upgrade run: pass-all subscriptions only (all v1 could hold),
    // shadowed by a plain in-memory twin for the reference reports.
    let mut durable =
        DurableMultiStreamingEngine::create(MemoryStore::new(), RETENTION, &cfg).unwrap();
    let mut plain = MultiStreamingEngine::with_threads(RETENTION, 1).unwrap();
    for q in [
        StreamingQuery::temporal(RETENTION),
        StreamingQuery::simple(25).max_len(5),
    ] {
        let a = durable.subscribe(q.clone()).unwrap();
        let b = plain.subscribe(q).unwrap();
        assert_eq!(a, b);
    }
    for batch in &batches[..split] {
        let a = durable.ingest(batch).unwrap();
        let b = plain.ingest(batch).unwrap();
        assert_eq!(project(&a), project(&b));
    }
    durable.checkpoint_now().unwrap();

    // Downgrade the newest checkpoint to the v1 format, as if the file had
    // been written before the upgrade: re-encode the decoded checkpoint
    // without its predicate fields, one sequence number ahead so recovery
    // must pick it.
    let seq = *durable
        .log()
        .store()
        .checkpoint_seqs()
        .unwrap()
        .last()
        .unwrap();
    let mut store = durable.into_store();
    let mut ck = Checkpoint::decode(&store.read_checkpoint(seq).unwrap()).unwrap();
    ck.seq += 1;
    store.write_checkpoint(ck.seq, &encode_v1(&ck)).unwrap();

    // Recovery: every restored query carries the pass-all predicate — which
    // is exactly what those v1 queries meant — and the stream continues
    // byte-identically.
    let (mut recovered, info) = recover(store, &cfg).unwrap();
    assert_eq!(info.checkpoint_seq, ck.seq, "the v1 checkpoint is newest");
    assert_eq!(info.dropped_batches, 0);
    for (_, q) in recovered.engine().subscriptions() {
        assert!(
            q.edge_predicate().is_pass_all(),
            "v1 records decode to pass-all predicates"
        );
    }
    assert_eq!(
        recovered.engine().subscription_snapshots(),
        plain.subscription_snapshots(),
        "the upgraded registry matches the uninterrupted twin"
    );

    // Post-upgrade, a predicate-bearing subscription joins both engines …
    let pred = EdgePredicate::pass_all()
        .min_amount(30_000)
        .labels(LabelFilter::deny(vec![0, 7]));
    let a = recovered
        .subscribe(StreamingQuery::temporal(20).predicate(pred.clone()))
        .unwrap();
    let b = plain
        .subscribe(StreamingQuery::temporal(20).predicate(pred))
        .unwrap();
    assert_eq!(a, b, "persisted next-id survives the v1 upgrade");
    for batch in &batches[split..] {
        let x = recovered.ingest(batch).unwrap();
        let y = plain.ingest(batch).unwrap();
        assert_eq!(project(&x), project(&y));
    }

    // … and survives the *next* crash via the current format.
    recovered.checkpoint_now().unwrap();
    let expected = recovered.engine().subscription_snapshots();
    let (after, _) = recover(recovered.into_store(), &cfg).unwrap();
    assert_eq!(
        after.engine().subscription_snapshots(),
        expected,
        "predicates roundtrip through the post-upgrade checkpoint"
    );
}

/// Re-encodes a checkpoint in the **v3** on-disk format: predicate and shard
/// fields present, no extended-predicate records — the layout the encoder
/// produced before the cycle-predicate algebra existed. Only meaningful for
/// registries whose extended components are pass-all (all v3 could express).
fn encode_v3(ck: &Checkpoint) -> Vec<u8> {
    use parallel_cycle_enumeration::graph::io::crc32;
    let mut buf = Vec::new();
    buf.extend_from_slice(b"PCEC");
    buf.extend_from_slice(&3u16.to_le_bytes());
    buf.extend_from_slice(&ck.seq.to_le_bytes());
    buf.extend_from_slice(&ck.batches.to_le_bytes());
    buf.extend_from_slice(&ck.watermark.to_le_bytes());
    buf.extend_from_slice(&ck.retention.to_le_bytes());
    buf.extend_from_slice(&ck.compaction_base.to_le_bytes());
    buf.push(match ck.granularity {
        Granularity::Sequential => 0,
        Granularity::CoarseGrained => 1,
        Granularity::FineGrained => 2,
    });
    buf.push(match ck.strategy {
        FanOutStrategy::Naive => 0,
        FanOutStrategy::Indexed => 1,
    });
    buf.extend_from_slice(&ck.next_query_id.to_le_bytes());
    buf.extend_from_slice(&(ck.shards.shards() as u32).to_le_bytes());
    buf.extend_from_slice(&(ck.subscriptions.len() as u32).to_le_bytes());
    for sub in &ck.subscriptions {
        let q = &sub.query;
        let ext = q.extended_predicate();
        assert!(
            !ext.has_cycle_constraints() && *ext.vertex_filter() == VertexFilter::Any,
            "v3 cannot express extended cycle constraints"
        );
        buf.extend_from_slice(&sub.id.as_u64().to_le_bytes());
        buf.push(match q.kind() {
            CycleKind::Simple => 0,
            CycleKind::Temporal => 1,
        });
        buf.push(match q.requested_granularity() {
            Granularity::Sequential => 0,
            Granularity::CoarseGrained => 1,
            Granularity::FineGrained => 2,
        });
        buf.extend_from_slice(&q.window_delta().to_le_bytes());
        let max_len = q.max_len_bound().map_or(u64::MAX, |n| n as u64);
        buf.extend_from_slice(&max_len.to_le_bytes());
        buf.push(q.includes_self_loops() as u8);
        buf.push(match q.collect_mode() {
            CollectMode::Count => 0,
            CollectMode::Collect => 1,
        });
        buf.extend_from_slice(&sub.total_cycles.to_le_bytes());
        let pred = q.edge_predicate();
        buf.extend_from_slice(&pred.amount_min().to_le_bytes());
        buf.extend_from_slice(&pred.amount_max().to_le_bytes());
        let labels = |buf: &mut Vec<u8>, set: &[u16]| {
            buf.extend_from_slice(&(set.len() as u32).to_le_bytes());
            for label in set {
                buf.extend_from_slice(&label.to_le_bytes());
            }
        };
        match pred.label_filter() {
            LabelFilter::Any => buf.push(0),
            LabelFilter::Allow(set) => {
                buf.push(1);
                labels(&mut buf, set);
            }
            LabelFilter::Deny(set) => {
                buf.push(2);
                labels(&mut buf, set);
            }
        }
        buf.extend_from_slice(&(q.shard_spec().shards() as u32).to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// A store whose newest checkpoint predates the cycle-predicate algebra (v3:
/// edge predicates and shard fields, no extended records) must recover with
/// every query's extended components pass-all — exactly the constraints
/// those queries could express — keep serving byte-identical reports, accept
/// a subscription with aggregate/positional/vertex constraints after the
/// upgrade, and roundtrip it through the **next** crash in the current (v4)
/// format.
#[test]
fn v3_checkpoint_store_upgrades_through_recovery() {
    let cfg = DurableConfig {
        // No cadence checkpoints: the hand-planted v3 checkpoint must be the
        // newest one recovery sees.
        checkpoint_every_batches: u64::MAX,
        threads: 1,
        ..DurableConfig::default()
    };
    let batches = attribute_stream(&sweep_stream(sweep_seed() ^ 0x03F4, 10));
    let split = batches.len() / 2;

    // The pre-upgrade run: edge-predicate subscriptions only (all v3 could
    // hold), shadowed by a plain in-memory twin for the reference reports.
    let mut durable =
        DurableMultiStreamingEngine::create(MemoryStore::new(), RETENTION, &cfg).unwrap();
    let mut plain = MultiStreamingEngine::with_threads(RETENTION, 1).unwrap();
    for q in [
        StreamingQuery::temporal(RETENTION),
        StreamingQuery::simple(25).max_len(5).predicate(
            EdgePredicate::pass_all()
                .min_amount(20_000)
                .labels(LabelFilter::deny(vec![0])),
        ),
    ] {
        let a = durable.subscribe(q.clone()).unwrap();
        let b = plain.subscribe(q).unwrap();
        assert_eq!(a, b);
    }
    for batch in &batches[..split] {
        let a = durable.ingest(batch).unwrap();
        let b = plain.ingest(batch).unwrap();
        assert_eq!(project(&a), project(&b));
    }
    durable.checkpoint_now().unwrap();

    // Downgrade the newest checkpoint to the v3 format, one sequence number
    // ahead so recovery must pick it.
    let seq = *durable
        .log()
        .store()
        .checkpoint_seqs()
        .unwrap()
        .last()
        .unwrap();
    let mut store = durable.into_store();
    let mut ck = Checkpoint::decode(&store.read_checkpoint(seq).unwrap()).unwrap();
    ck.seq += 1;
    store.write_checkpoint(ck.seq, &encode_v3(&ck)).unwrap();

    // Recovery: no extended records in the checkpoint means pass-all
    // extended components — the edge predicates themselves survive — and
    // the stream continues byte-identically.
    let (mut recovered, info) = recover(store, &cfg).unwrap();
    assert_eq!(info.checkpoint_seq, ck.seq, "the v3 checkpoint is newest");
    assert_eq!(info.dropped_batches, 0);
    for (_, q) in recovered.engine().subscriptions() {
        let ext = q.extended_predicate();
        assert!(
            !ext.has_cycle_constraints(),
            "v3 records decode with pass-all aggregate/positional components"
        );
        assert_eq!(*ext.vertex_filter(), VertexFilter::Any);
    }
    assert_eq!(
        recovered.engine().subscription_snapshots(),
        plain.subscription_snapshots(),
        "the upgraded registry matches the uninterrupted twin"
    );

    // Post-upgrade, a subscription with the full extended algebra joins both
    // engines …
    let cp = CyclePredicate::pass_all()
        .edge(EdgePredicate::pass_all().min_amount(10_000))
        .total_min(60_000)
        .monotone_amounts(true)
        .at(
            Position::FromEnd(0),
            EdgePredicate::pass_all().min_amount(20_000),
        )
        .vertices(VertexFilter::deny(vec![3]));
    let a = recovered
        .subscribe(StreamingQuery::temporal(20).cycle_predicate(cp.clone()))
        .unwrap();
    let b = plain
        .subscribe(StreamingQuery::temporal(20).cycle_predicate(cp.clone()))
        .unwrap();
    assert_eq!(a, b, "persisted next-id survives the v3 upgrade");
    for batch in &batches[split..] {
        let x = recovered.ingest(batch).unwrap();
        let y = plain.ingest(batch).unwrap();
        assert_eq!(project(&x), project(&y));
    }

    // … and survives the *next* crash via the current (v4) format, extended
    // components intact.
    recovered.checkpoint_now().unwrap();
    let expected = recovered.engine().subscription_snapshots();
    let (after, _) = recover(recovered.into_store(), &cfg).unwrap();
    assert_eq!(
        after.engine().subscription_snapshots(),
        expected,
        "extended predicates roundtrip through the post-upgrade checkpoint"
    );
    let restored = after
        .engine()
        .subscriptions()
        .find(|(id, _)| *id == a)
        .map(|(_, q)| q.extended_predicate().clone())
        .expect("extended subscription survives recovery");
    assert_eq!(restored, cp, "v4 records carry the full extended predicate");
}

/// Every single-bit flip and every truncation of a real v4 checkpoint (one
/// whose registry carries aggregate, positional, and vertex constraints)
/// must decode to a typed error — never a panic, never a silent
/// misinterpretation.
#[test]
fn v4_checkpoint_corruption_is_typed_never_panics() {
    let cfg = DurableConfig {
        checkpoint_every_batches: u64::MAX,
        threads: 1,
        ..DurableConfig::default()
    };
    let mut durable =
        DurableMultiStreamingEngine::create(MemoryStore::new(), RETENTION, &cfg).unwrap();
    durable
        .subscribe(
            StreamingQuery::temporal(RETENTION).cycle_predicate(
                CyclePredicate::pass_all()
                    .edge(EdgePredicate::pass_all().labels(LabelFilter::allow(vec![1, 4])))
                    .total_min(5_000)
                    .total_max(250_000)
                    .monotone_amounts(true)
                    .at(
                        Position::FromStart(0),
                        EdgePredicate::pass_all().min_amount(100),
                    )
                    .at(
                        Position::FromEnd(1),
                        EdgePredicate::pass_all().labels(LabelFilter::deny(vec![6])),
                    )
                    .vertices(VertexFilter::allow(vec![0, 1, 2, 3, 4, 5])),
            ),
        )
        .unwrap();
    durable
        .ingest(&[
            TemporalEdge::with_attrs(0, 1, 10, 6_000, 1),
            TemporalEdge::with_attrs(1, 2, 20, 7_000, 4),
        ])
        .unwrap();
    durable.checkpoint_now().unwrap();

    let store = durable.into_store();
    let seq = *store.checkpoint_seqs().unwrap().last().unwrap();
    let bytes = store.read_checkpoint(seq).unwrap();
    assert_eq!(
        Checkpoint::decode(&bytes).unwrap().subscriptions.len(),
        1,
        "the pristine blob decodes"
    );
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at {byte}.{bit} decoded"
            );
        }
    }
    for len in 0..bytes.len() {
        assert!(
            Checkpoint::decode(&bytes[..len]).is_err(),
            "truncation to {len} decoded"
        );
    }
    let mut padded = bytes.clone();
    padded.push(0x5A);
    assert!(
        Checkpoint::decode(&padded).is_err(),
        "trailing byte decoded"
    );
}
