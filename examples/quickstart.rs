//! Quickstart: build a small temporal graph, enumerate its simple and
//! temporal cycles through one long-lived [`Engine`], and print what was
//! found.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use parallel_cycle_enumeration::prelude::*;

fn main() {
    // A toy payment network: account 0 pays 1, 1 pays 2, 2 pays back 0 —
    // twice, through two different intermediaries, plus some unrelated noise.
    let graph = GraphBuilder::new()
        .add_edge(0, 1, 10)
        .add_edge(1, 2, 20)
        .add_edge(2, 0, 30)
        .add_edge(0, 3, 40)
        .add_edge(3, 4, 50)
        .add_edge(4, 0, 60)
        .add_edge(5, 6, 15) // noise: never returns
        .add_edge(6, 7, 25)
        .add_edge(2, 1, 5) // an edge "back in time": simple cycle only
        .build();

    println!("graph: {}", GraphStats::compute(&graph));

    // One engine per process: it owns the thread pool and serves every query.
    let engine = Engine::with_threads(2);

    // Simple cycles within a 60-tick window.
    let simple_query = Query::simple()
        .algorithm(Algorithm::Johnson)
        .granularity(Granularity::FineGrained)
        .window(60)
        .collect(CollectMode::Collect);
    let simple = engine.run(&simple_query, &graph).expect("valid query");
    println!(
        "\nsimple cycles within a 60-tick window: {} (in {:.3} ms)",
        simple.stats.cycles,
        simple.stats.wall_secs * 1e3
    );
    for cycle in simple.cycles.as_deref().unwrap_or_default() {
        println!(
            "  vertices {:?}  timestamps {:?}",
            cycle.vertices,
            cycle.timestamps(&graph)
        );
    }

    // Temporal cycles: the edges must additionally appear in increasing
    // timestamp order, which is what makes them interesting for fraud
    // detection — money that demonstrably flowed around a loop.
    let temporal_query = Query::temporal()
        .algorithm(Algorithm::Johnson)
        .granularity(Granularity::FineGrained)
        .window(60)
        .collect(CollectMode::Collect);
    let temporal = engine.run(&temporal_query, &graph).expect("valid query");
    println!(
        "\ntemporal cycles within a 60-tick window: {}",
        temporal.stats.cycles
    );
    for cycle in temporal.cycles.as_deref().unwrap_or_default() {
        println!(
            "  vertices {:?}  timestamps {:?}",
            cycle.vertices,
            cycle.timestamps(&graph)
        );
    }

    // The same queries answered by the work-efficient fine-grained
    // Read-Tarjan algorithm must agree — same engine, same pool.
    let rt_count = engine
        .count(
            &Query::simple()
                .algorithm(Algorithm::ReadTarjan)
                .granularity(Granularity::FineGrained)
                .window(60),
            &graph,
        )
        .expect("valid query");
    assert_eq!(rt_count, simple.stats.cycles);
    println!("\nread-tarjan agrees: {rt_count} simple cycles");

    // Invalid queries are rejected up front instead of running something
    // else: Tiernan has no fine-grained decomposition.
    let err = engine
        .count(
            &Query::simple()
                .algorithm(Algorithm::Tiernan)
                .granularity(Granularity::FineGrained),
            &graph,
        )
        .unwrap_err();
    println!("invalid query rejected as expected: {err}");
}
