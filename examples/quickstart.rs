//! Quickstart: build a small temporal graph, enumerate its simple and
//! temporal cycles with the fine-grained parallel Johnson algorithm, and
//! print what was found.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use parallel_cycle_enumeration::prelude::*;

fn main() {
    // A toy payment network: account 0 pays 1, 1 pays 2, 2 pays back 0 —
    // twice, through two different intermediaries, plus some unrelated noise.
    let graph = GraphBuilder::new()
        .add_edge(0, 1, 10)
        .add_edge(1, 2, 20)
        .add_edge(2, 0, 30)
        .add_edge(0, 3, 40)
        .add_edge(3, 4, 50)
        .add_edge(4, 0, 60)
        .add_edge(5, 6, 15) // noise: never returns
        .add_edge(6, 7, 25)
        .add_edge(2, 1, 5) // an edge "back in time": simple cycle only
        .build();

    println!("graph: {}", GraphStats::compute(&graph));

    // Simple cycles within a 60-tick window.
    let simple = CycleEnumerator::new()
        .algorithm(Algorithm::Johnson)
        .granularity(Granularity::FineGrained)
        .threads(2)
        .window(60)
        .collect_cycles(true)
        .enumerate_simple(&graph);
    println!(
        "\nsimple cycles within a 60-tick window: {} (in {:.3} ms)",
        simple.stats.cycles,
        simple.stats.wall_secs * 1e3
    );
    for cycle in simple.cycles.as_deref().unwrap_or_default() {
        println!(
            "  vertices {:?}  timestamps {:?}",
            cycle.vertices,
            cycle.timestamps(&graph)
        );
    }

    // Temporal cycles: the edges must additionally appear in increasing
    // timestamp order, which is what makes them interesting for fraud
    // detection — money that demonstrably flowed around a loop.
    let temporal = CycleEnumerator::new()
        .algorithm(Algorithm::Johnson)
        .granularity(Granularity::FineGrained)
        .threads(2)
        .window(60)
        .collect_cycles(true)
        .enumerate_temporal(&graph);
    println!(
        "\ntemporal cycles within a 60-tick window: {}",
        temporal.stats.cycles
    );
    for cycle in temporal.cycles.as_deref().unwrap_or_default() {
        println!(
            "  vertices {:?}  timestamps {:?}",
            cycle.vertices,
            cycle.timestamps(&graph)
        );
    }

    // The same queries answered by the work-efficient fine-grained
    // Read-Tarjan algorithm must agree.
    let rt_count = CycleEnumerator::new()
        .algorithm(Algorithm::ReadTarjan)
        .granularity(Granularity::FineGrained)
        .threads(2)
        .window(60)
        .count_simple(&graph);
    assert_eq!(rt_count, simple.stats.cycles);
    println!("\nread-tarjan agrees: {rt_count} simple cycles");
}
