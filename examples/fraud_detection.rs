//! Fraud detection scenario: find money-laundering-style rings in a synthetic
//! financial transaction graph.
//!
//! The generator plants a configurable number of temporal cycles ("rings") in
//! a background of ordinary transactions; the example enumerates all temporal
//! cycles inside a sliding time window sized to the typical laundering
//! turnaround and reports the accounts involved — the workload the paper's
//! introduction motivates (circular money flows as an indicator of money
//! laundering and circular trading).
//!
//! Run with:
//! ```text
//! cargo run --release --example fraud_detection -- [threads]
//! ```

use parallel_cycle_enumeration::graph::generators::{transaction_rings, TransactionRingConfig};
use parallel_cycle_enumeration::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    // One engine for the whole process; every query below reuses its pool.
    let engine = Engine::with_threads(threads);

    let cfg = TransactionRingConfig {
        num_accounts: 20_000,
        background_edges: 120_000,
        num_rings: 150,
        ring_len: (3, 6),
        time_span: 30 * 24 * 3600, // one month of seconds
        ring_span: 48 * 3600,      // rings complete within 48 hours
        seed: 7,
    };
    println!(
        "generating transaction graph: {} accounts, ~{} transactions, {} planted rings",
        cfg.num_accounts,
        cfg.background_edges + cfg.num_rings * cfg.ring_len.1,
        cfg.num_rings
    );
    let (graph, planted) = transaction_rings(cfg);
    println!("graph: {}", GraphStats::compute(&graph));

    // Enumerate temporal cycles within a 48-hour window.
    let query = Query::temporal()
        .algorithm(Algorithm::Johnson)
        .granularity(Granularity::FineGrained)
        .window(cfg.ring_span)
        .collect(CollectMode::Collect);
    let result = engine.run(&query, &graph).expect("valid query");

    println!(
        "\nfound {} temporal cycles in {:.2} s using {} threads \
         ({} planted rings, the rest emerge from background traffic)",
        result.stats.cycles, result.stats.wall_secs, result.stats.threads, planted
    );

    // Rank accounts by how many rings they participate in — the analyst's
    // shortlist.
    let mut involvement: BTreeMap<u32, usize> = BTreeMap::new();
    let cycles = result.cycles.unwrap_or_default();
    for cycle in &cycles {
        for &v in &cycle.vertices {
            *involvement.entry(v).or_default() += 1;
        }
    }
    let mut ranked: Vec<(u32, usize)> = involvement.into_iter().collect();
    ranked.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!("\ntop suspicious accounts (by ring participation):");
    for (account, count) in ranked.iter().take(10) {
        println!("  account {account:>6}  appears in {count} rings");
    }

    // Length distribution of the rings.
    let mut by_len: BTreeMap<usize, usize> = BTreeMap::new();
    for cycle in &cycles {
        *by_len.entry(cycle.len()).or_default() += 1;
    }
    println!("\nring length distribution:");
    for (len, count) in &by_len {
        println!("  length {len}: {count}");
    }

    println!(
        "\nwork: {} edge visits, {} tasks, {} steals, load imbalance {:.2}",
        result.stats.work.total_edge_visits(),
        result.stats.work.total_recursive_calls(),
        result.stats.work.total_steals(),
        result.stats.work.imbalance()
    );

    // Serving mode: stream rings to the consumer as they are discovered and
    // cancel the rest of the enumeration once enough evidence is in hand.
    let stream = engine.stream(&query, graph).expect("valid query");
    let preview: Vec<Cycle> = stream.take(5).collect();
    println!(
        "\nstreamed preview (first {} rings, rest cancelled):",
        preview.len()
    );
    for cycle in &preview {
        println!("  accounts {:?}", cycle.vertices);
    }
}
