//! Multi-tenant fraud detection: many analysts, one transaction stream.
//!
//! `streaming_fraud` serves **one** standing query; this example is the
//! production shape above it — several teams watch the *same* stream with
//! different questions (windows, cycle kinds, hop bounds, attribute
//! filters), and a single `MultiStreamingEngine` serves all of them from
//! **one** ingest pass per batch: one append/expiry, one delta root scan,
//! one per-root pruning pass at the widest subscribed window, then per-query
//! filtering. Each team gets its own attributed reports and latency
//! percentiles by `QueryId`. The AML desk's subscription carries an
//! `EdgePredicate` — only rings built entirely from large transfers — which
//! gets its own fan-out cohort keyed by the predicate profile.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_tenant_fraud -- [threads]
//! ```

use parallel_cycle_enumeration::core::streaming::{MultiStreamingEngine, StreamingQuery};
use parallel_cycle_enumeration::graph::generators::{transaction_rings, TransactionRingConfig};
use parallel_cycle_enumeration::prelude::*;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    // One month of synthetic transactions with planted laundering rings.
    let cfg = TransactionRingConfig {
        num_accounts: 10_000,
        background_edges: 80_000,
        num_rings: 60,
        ring_len: (3, 6),
        time_span: 30 * 24 * 3600, // one month of seconds
        ring_span: 24 * 3600,      // rings complete within 24 hours
        seed: 11,
    };
    let (history, planted) = transaction_rings(cfg);
    println!(
        "replaying {} transactions over {} accounts ({} planted rings) to 4 tenants",
        history.num_edges(),
        cfg.num_accounts,
        planted
    );

    // The generator emits bare (src, dst, ts) transfers; stamp each with a
    // deterministic amount so the AML desk's amount filter has something to
    // bite on. Amounts land roughly uniformly in 1..=100_000.
    let stamp = |e: &TemporalEdge| {
        let mix = u64::from(e.src) * 31 + u64::from(e.dst) * 7 + (e.ts as u64) * 13 + 5;
        TemporalEdge::with_attrs(e.src, e.dst, e.ts, (mix * 997) % 100_000 + 1, 0)
    };

    // One week of retention covers every tenant's window.
    let retention = 7 * 24 * 3600;
    let mut engine =
        MultiStreamingEngine::with_threads(retention, threads).expect("valid retention");

    // The compliance team: full 24h rings, materialised as alerts.
    let compliance = engine
        .subscribe(StreamingQuery::temporal(24 * 3600).max_len(8))
        .expect("valid query");
    // The real-time desk: short rings that complete within an hour.
    let realtime = engine
        .subscribe(StreamingQuery::temporal(3600).max_len(4))
        .expect("valid query");
    // The analytics tenant: simple cycles over 12 hours, counted only.
    let analytics = engine
        .subscribe(
            StreamingQuery::simple(12 * 3600)
                .max_len(5)
                .collect(CollectMode::Count),
        )
        .expect("valid query");
    // The AML desk: the compliance window, but only rings built entirely
    // from large transfers. The predicate is *pushed down* into the shared
    // pass — small transfers every tenant filters out would never even be
    // traversed — but here the unfiltered tenants keep the pass at pass-all,
    // so the predicate acts at fan-out, one evaluation per cohort.
    let aml = engine
        .subscribe(
            StreamingQuery::temporal(24 * 3600)
                .max_len(8)
                .predicate(EdgePredicate::pass_all().min_amount(60_000)),
        )
        .expect("valid query");
    let tenants = [
        (compliance, "compliance"),
        (realtime, "realtime-desk"),
        (analytics, "analytics"),
        (aml, "aml-desk"),
    ];
    println!(
        "subscribed {} tenants; shared pass runs at the widest window",
        engine.num_subscriptions()
    );
    // The constraint index routing candidates to tenants: cohorts bucket by
    // (kind, self-loops, predicate profile) — the AML desk's amount filter
    // shows up in its cohort key below — and groups deduplicate full
    // constraint profiles within each cohort.
    for (key, groups, subs) in engine.subscription_index().summaries() {
        println!("  cohort {key}: {subs} subscription(s) across {groups} constraint group(s)");
    }

    // Replay the history in hourly batches (edges are already time-sorted).
    let batch_edges = (history.num_edges() / (30 * 24)).max(1);
    let mut alerts = 0u64;
    let mut fan_out_checks = 0u64;
    let batches: Vec<Vec<TemporalEdge>> = history
        .edges()
        .chunks(batch_edges)
        .map(|chunk| chunk.iter().map(&stamp).collect())
        .collect();
    let mid = batches.len() / 2;
    for (i, batch) in batches.iter().enumerate() {
        // Halfway through the month the real-time desk stands down: later
        // batches stop paying its per-candidate check.
        if i == mid {
            assert!(engine.unsubscribe(realtime));
            println!("-- realtime-desk unsubscribed after batch {i} --");
        }
        let report = engine.ingest(batch).expect("in-order batch");
        fan_out_checks += report.fan_out.checks;
        if let Some(r) = report.report(compliance) {
            for ring in &r.cycles {
                alerts += 1;
                if alerts <= 3 {
                    let closed = ring.edges.last().expect("rings have edges");
                    println!(
                        "COMPLIANCE ALERT at t={}: ring of {} accounts closed by {} -> {}",
                        closed.ts,
                        ring.len(),
                        closed.src,
                        closed.dst
                    );
                }
            }
        }
    }

    println!("\nper-tenant summary (one shared ingest pass for all of them):");
    for (id, name) in tenants {
        match (engine.total_cycles(id), engine.latency(id)) {
            (Some(cycles), Some(latency)) => println!(
                "  {name:>14} ({id}): {cycles:>5} cycles over {} batches, \
                 batch latency p50 {:.3} ms / p95 {:.3} ms / max {:.3} ms",
                latency.count(),
                latency.percentile_secs(0.50) * 1e3,
                latency.percentile_secs(0.95) * 1e3,
                latency.max_secs() * 1e3,
            ),
            _ => println!("  {name:>14} ({id}): unsubscribed"),
        }
    }
    let watched = engine.total_cycles(compliance).unwrap_or(0);
    let large = engine.total_cycles(aml).unwrap_or(0);
    assert!(large <= watched, "the predicate only ever narrows a report");
    println!(
        "  the aml-desk's {large} rings are exactly the compliance team's {watched} \
         whose every hop moved at least 60 000"
    );
    println!(
        "\n{} batches, {} live edges in the final window, {} edges ingested exactly once, \
         {} fan-out constraint checks ({:?} dispatch)",
        engine.batches(),
        engine.graph().live_edges().len(),
        engine.graph().total_ingested(),
        fan_out_checks,
        engine.fan_out_strategy(),
    );
}
