//! Streaming fraud detection: watch a transaction stream and raise an alert
//! the moment a laundering ring *closes*.
//!
//! The one-shot `fraud_detection` example asks "which rings exist in this
//! month of data?"; this one answers the production question: transactions
//! arrive continuously, old ones age out of the sliding window, and every
//! batch must report exactly the rings its transfers completed — incremental
//! work per batch, not a full re-enumeration.
//!
//! Run with:
//! ```text
//! cargo run --release --example streaming_fraud -- [threads] [seq|coarse|fine]
//! ```
//!
//! The optional second argument picks the delta-enumeration granularity:
//! `coarse` (the default) schedules one task per ring-closing transaction,
//! `fine` lets idle workers steal partial ring searches mid-flight — the
//! right choice when one hub account closes most of a batch's rings.

use parallel_cycle_enumeration::core::streaming::{StreamingEngine, StreamingQuery};
use parallel_cycle_enumeration::graph::generators::{transaction_rings, TransactionRingConfig};
use parallel_cycle_enumeration::prelude::*;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let granularity = match std::env::args().nth(2).as_deref() {
        Some("seq") | Some("sequential") => Granularity::Sequential,
        Some("fine") => Granularity::FineGrained,
        Some("coarse") | None => Granularity::CoarseGrained,
        Some(other) => {
            eprintln!("unknown granularity {other:?}; use seq, coarse or fine");
            std::process::exit(2);
        }
    };

    // One month of synthetic transactions with planted laundering rings.
    let cfg = TransactionRingConfig {
        num_accounts: 10_000,
        background_edges: 80_000,
        num_rings: 60,
        ring_len: (3, 6),
        time_span: 30 * 24 * 3600, // one month of seconds
        ring_span: 24 * 3600,      // rings complete within 24 hours
        seed: 11,
    };
    let (history, planted) = transaction_rings(cfg);
    println!(
        "replaying {} transactions over {} accounts ({} planted rings) as a stream",
        history.num_edges(),
        cfg.num_accounts,
        planted
    );

    // Keep one week of transactions in the window; flag rings that complete
    // within 24 hours and involve at most 8 accounts.
    let retention = 7 * 24 * 3600;
    let query = StreamingQuery::temporal(cfg.ring_span)
        .max_len(8)
        .granularity(granularity);
    let mut engine =
        StreamingEngine::with_threads(retention, query, threads).expect("valid streaming config");
    println!("delta enumeration granularity: {granularity:?}");

    // Replay the history in hourly batches (edges are already time-sorted).
    let batch_edges = (history.num_edges() / (30 * 24)).max(1);
    let mut alerts = 0u64;
    for batch in history.edges().chunks(batch_edges) {
        let report = engine.ingest(batch).expect("in-order batch");
        for ring in &report.cycles {
            alerts += 1;
            // Print the first few alerts the way an analyst would see them.
            if alerts <= 5 {
                let closed = ring.edges.last().expect("rings have edges");
                println!(
                    "ALERT at t={}: ring of {} accounts closed by {} → {} (accounts {:?})",
                    closed.ts,
                    ring.len(),
                    closed.src,
                    closed.dst,
                    ring.vertices
                );
            }
        }
    }

    let g = engine.graph();
    println!(
        "\nstream done: {} batches, {} transactions ingested, {} expired out of the window",
        engine.batches(),
        g.total_ingested(),
        g.total_expired()
    );
    println!(
        "{} rings detected in total ({} planted; extras emerge from background traffic)",
        engine.total_cycles(),
        planted
    );
    let window = g.window().expect("live transactions remain");
    println!(
        "window now [{} : {}] holding {} live transactions",
        window.start,
        window.end,
        g.live_edges().len()
    );

    // The incremental results agree with a one-shot query over the final
    // window — the equivalence the subsystem guarantees.
    let snapshot = engine.snapshot();
    let one_shot = engine
        .engine()
        .count(
            &Query::temporal().window(cfg.ring_span).max_len(8),
            &snapshot,
        )
        .expect("valid query");
    println!(
        "one-shot check over the final window: {one_shot} rings still fully inside the window"
    );
}
