//! Load balance demonstration (the paper's Figure 1): per-thread busy time of
//! the coarse-grained versus the fine-grained parallel Johnson algorithm on a
//! hub-heavy graph.
//!
//! The coarse-grained algorithm assigns whole root-edge searches to threads;
//! on graphs with power-law degrees, a handful of hub edges own most of the
//! work and the remaining threads idle. The fine-grained algorithm lets idle
//! threads steal unexplored branches of those heavy searches, flattening the
//! per-thread busy-time profile.
//!
//! Run with:
//! ```text
//! cargo run --release --example load_balance -- [threads]
//! ```

use parallel_cycle_enumeration::prelude::*;

fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn print_profile(label: &str, stats: &RunStats) {
    println!("\n{label}: {:.3} s wall clock", stats.wall_secs);
    let busy = stats.work.busy_secs_per_worker();
    let max = busy.iter().cloned().fold(f64::EPSILON, f64::max);
    for (worker, secs) in busy.iter().enumerate() {
        println!(
            "  thread {worker:>2}  {:>8.3} s  {}",
            secs,
            bar(secs / max, 40)
        );
    }
    println!("  load imbalance factor: {:.2}", stats.work.imbalance());
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // The wiki-talk stand-in: heavy hubs, exactly the shape of Figure 1.
    let spec = dataset(DatasetId::WT);
    println!(
        "dataset {} ({}) — generating…",
        spec.id.abbrev(),
        spec.id.full_name()
    );
    let workload = spec.build();
    let graph = &workload.graph;
    println!("graph: {}", workload.stats());

    // One engine per process; both granularities run on its single pool.
    let engine = Engine::with_threads(threads);
    let base = Query::simple().window(spec.delta_simple);

    let coarse = engine
        .run(&base.clone().granularity(Granularity::CoarseGrained), graph)
        .expect("valid query")
        .stats;
    let coarse_cycles = coarse.cycles;
    print_profile("coarse-grained parallel Johnson", &coarse);

    let fine = engine
        .run(&base.granularity(Granularity::FineGrained), graph)
        .expect("valid query")
        .stats;
    print_profile("fine-grained parallel Johnson", &fine);

    assert_eq!(coarse_cycles, fine.cycles, "both must find the same cycles");
    println!(
        "\nboth algorithms found {} simple cycles; fine-grained speedup over \
         coarse-grained: {:.2}x",
        fine.cycles,
        coarse.wall_secs / fine.wall_secs
    );
}
