//! Scaling study: measure how the four parallel algorithms scale with the
//! number of threads on one hub-heavy workload — a miniature, self-contained
//! version of the paper's Figure 9.
//!
//! Run with:
//! ```text
//! cargo run --release --example scaling_study -- [dataset-abbrev]
//! ```
//! where `dataset-abbrev` is one of the Table 4 abbreviations (default `CO`).

use parallel_cycle_enumeration::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "CO".to_string());
    let spec = dataset_suite()
        .into_iter()
        .find(|s| s.id.abbrev().eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| dataset(DatasetId::CO));
    println!(
        "dataset {} ({}) — generating…",
        spec.id.abbrev(),
        spec.id.full_name()
    );
    let workload = spec.build();
    let graph = &workload.graph;
    println!("graph: {}", workload.stats());
    let base = Query::temporal().window(spec.delta_temporal);

    // Serial reference (no pool is spawned for sequential queries).
    let serial_engine = Engine::new();
    let serial = serial_engine
        .run(&base.clone().granularity(Granularity::Sequential), graph)
        .expect("valid query")
        .stats;
    println!(
        "\nserial temporal Johnson: {} cycles in {:.3} s",
        serial.cycles, serial.wall_secs
    );

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut thread_counts = vec![1usize, 2, 4, 8, 16, 32];
    thread_counts.retain(|&t| t <= max_threads.max(1));

    println!(
        "\n{:>8}  {:>16}  {:>16}  {:>16}",
        "threads", "fine-Johnson", "fine-Read-Tarjan", "coarse-Johnson"
    );
    for &threads in &thread_counts {
        // One engine per thread count; its pool is shared by all three
        // algorithm queries at this scale point.
        let engine = Engine::with_threads(threads);

        let fj = engine
            .run(
                &base
                    .clone()
                    .algorithm(Algorithm::Johnson)
                    .granularity(Granularity::FineGrained),
                graph,
            )
            .expect("valid query")
            .stats;
        assert_eq!(fj.cycles, serial.cycles);

        let frt = engine
            .run(
                &base
                    .clone()
                    .algorithm(Algorithm::ReadTarjan)
                    .granularity(Granularity::FineGrained),
                graph,
            )
            .expect("valid query")
            .stats;
        assert_eq!(frt.cycles, serial.cycles);

        let cj = engine
            .run(&base.clone().granularity(Granularity::CoarseGrained), graph)
            .expect("valid query")
            .stats;
        assert_eq!(cj.cycles, serial.cycles);

        println!(
            "{threads:>8}  {:>10.2}x ({:>5.2}s)  {:>10.2}x ({:>5.2}s)  {:>10.2}x ({:>5.2}s)",
            serial.wall_secs / fj.wall_secs,
            fj.wall_secs,
            serial.wall_secs / frt.wall_secs,
            frt.wall_secs,
            serial.wall_secs / cj.wall_secs,
            cj.wall_secs,
        );
    }

    println!(
        "\nExpected shape (paper, Figure 9): the fine-grained algorithms scale \
         nearly linearly with the number of physical cores, while the \
         coarse-grained algorithm plateaus once the heaviest root edge \
         dominates."
    );
}
