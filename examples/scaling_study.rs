//! Scaling study: measure how the four parallel algorithms scale with the
//! number of threads on one hub-heavy workload — a miniature, self-contained
//! version of the paper's Figure 9.
//!
//! Run with:
//! ```text
//! cargo run --release --example scaling_study -- [dataset-abbrev]
//! ```
//! where `dataset-abbrev` is one of the Table 4 abbreviations (default `CO`).

use parallel_cycle_enumeration::core::par::coarse::coarse_temporal;
use parallel_cycle_enumeration::core::par::fine_temporal::{
    fine_temporal_johnson, fine_temporal_read_tarjan,
};
use parallel_cycle_enumeration::core::seq::temporal::temporal_simple;
use parallel_cycle_enumeration::core::{CountingSink, TemporalCycleOptions};
use parallel_cycle_enumeration::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "CO".to_string());
    let spec = dataset_suite()
        .into_iter()
        .find(|s| s.id.abbrev().eq_ignore_ascii_case(&which))
        .unwrap_or_else(|| dataset(DatasetId::CO));
    println!(
        "dataset {} ({}) — generating…",
        spec.id.abbrev(),
        spec.id.full_name()
    );
    let workload = spec.build();
    let graph = &workload.graph;
    println!("graph: {}", workload.stats());
    let opts = TemporalCycleOptions::with_window(spec.delta_temporal);

    // Serial reference.
    let sink = CountingSink::new();
    let serial = temporal_simple(graph, &opts, &sink);
    println!(
        "\nserial temporal Johnson: {} cycles in {:.3} s",
        serial.cycles, serial.wall_secs
    );

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut thread_counts = vec![1usize, 2, 4, 8, 16, 32];
    thread_counts.retain(|&t| t <= max_threads.max(1));

    println!(
        "\n{:>8}  {:>16}  {:>16}  {:>16}",
        "threads", "fine-Johnson", "fine-Read-Tarjan", "coarse-Johnson"
    );
    for &threads in &thread_counts {
        let pool = ThreadPool::new(threads);

        let sink = CountingSink::new();
        let fj = fine_temporal_johnson(graph, &opts, &sink, &pool);
        assert_eq!(fj.cycles, serial.cycles);

        let sink = CountingSink::new();
        let frt = fine_temporal_read_tarjan(graph, &opts, &sink, &pool);
        assert_eq!(frt.cycles, serial.cycles);

        let sink = CountingSink::new();
        let cj = coarse_temporal(graph, &opts, &sink, &pool);
        assert_eq!(cj.cycles, serial.cycles);

        println!(
            "{threads:>8}  {:>10.2}x ({:>5.2}s)  {:>10.2}x ({:>5.2}s)  {:>10.2}x ({:>5.2}s)",
            serial.wall_secs / fj.wall_secs,
            fj.wall_secs,
            serial.wall_secs / frt.wall_secs,
            frt.wall_secs,
            serial.wall_secs / cj.wall_secs,
            cj.wall_secs,
        );
    }

    println!(
        "\nExpected shape (paper, Figure 9): the fine-grained algorithms scale \
         nearly linearly with the number of physical cores, while the \
         coarse-grained algorithm plateaus once the heaviest root edge \
         dominates."
    );
}
